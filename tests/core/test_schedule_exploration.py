"""Schedule exploration over the concurrent mix (DST).

Random and targeted explorers perturb the interleaving of the
three-request concurrent workload at every kernel blocking point (plus
the named interleave points near locks, 2PC rounds, migration phases and
failover promotion), asserting the invariant triple after every explored
schedule. Every failure is replayable from the printed
``DST-REPLAY seed=... trace=...`` line — proven here by tests that
replay captured traces bit-for-bit. See docs/testing.md.
"""

from __future__ import annotations

import json
import os

import pytest

import dst
from repro.platform import CrashAtOccurrence
from repro.sim import (
    RandomSchedule,
    ReplaySchedule,
    TargetedSchedule,
    parse_failure,
)

# CI budget: ≥ 200 *distinct* schedules under a fixed seed family.
EXPLORE_SEEDS = int(os.environ.get("DST_SEEDS", "205"))


def _run_light(schedule, crash_policy=None, capture=False):
    h = dst.build_harness(dst.LIGHT_FLAGS, schedule=schedule)
    if capture:
        h.kernel.capture_trace = True
    try:
        if crash_policy is not None:
            h.set_crash_policy(crash_policy)
        dst.run_requests(h)
        dst.check_effects(h)
        dst.run_gc_passes(h)
        dst.assert_store_clean(h)
    finally:
        h.shutdown()
    return h


def test_random_exploration_covers_200_distinct_schedules():
    traces = dst.explore(range(EXPLORE_SEEDS))
    assert len(traces) >= min(200, EXPLORE_SEEDS), (
        f"only {len(traces)} distinct schedules across "
        f"{EXPLORE_SEEDS} seeds")


def test_targeted_explorer_reaches_conflict_sites():
    for seed in range(3):
        schedule = TargetedSchedule(seed)
        _run_light(schedule)
        assert schedule.conflict_hits > 0, (
            f"targeted explorer (seed {seed}) never saw a conflict-site "
            "candidate — are the interleave points wired?")


def test_exploration_composes_with_crash_injection():
    """Random schedules + an occurrence-pinned crash: the n-th time any
    invocation reaches ``body:done``, it dies there — stable across
    interleavings, unlike a (function, ordinal) pin."""
    for seed in range(3):
        h = _run_light(RandomSchedule(seed),
                       crash_policy=CrashAtOccurrence("body:done",
                                                      occurrence=4))
        assert h.injected_crashes == 1


def test_same_seed_same_schedule_is_bit_identical():
    """Satellite: same seed + same schedule ⇒ identical kernel event
    trace and identical final store state, across two full runs."""
    first = _run_light(RandomSchedule(17), capture=True)
    second = _run_light(RandomSchedule(17), capture=True)
    assert first.kernel.fired_trace == second.kernel.fired_trace
    assert first.kernel.schedule_trace == second.kernel.schedule_trace
    assert dst.final_state(first) == dst.final_state(second)
    assert first.results == second.results


def test_replay_schedule_reproduces_random_run():
    """A captured (seed, trace) replays the random run bit-for-bit —
    the mechanism every printed DST-REPLAY line relies on."""
    recorded = _run_light(RandomSchedule(23), capture=True)
    trace = list(recorded.kernel.schedule_trace)
    replayed = _run_light(ReplaySchedule(trace), capture=True)
    assert replayed.kernel.fired_trace == recorded.kernel.fired_trace
    assert replayed.kernel.schedule_trace == trace
    assert dst.final_state(replayed) == dst.final_state(recorded)
    assert replayed.results == recorded.results


def test_failure_prints_replayable_seed_trace(monkeypatch, tmp_path):
    """Any invariant failure surfaces as ScheduleFailure carrying a
    parseable DST-REPLAY line and the artifact file for CI; replaying
    the captured trace reproduces the same failure at the same point."""
    real_check = dst.check_effects

    def breaking_check(h):
        real_check(h)
        raise AssertionError("injected invariant failure")

    monkeypatch.setattr(dst, "check_effects", breaking_check)
    artifact = tmp_path / "dst-failure.json"
    monkeypatch.setenv("DST_FAILURE_FILE", str(artifact))
    with pytest.raises(dst.ScheduleFailure) as excinfo:
        dst.explore([31])
    message = str(excinfo.value)
    assert "DST-REPLAY seed=31 trace=" in message
    seed, trace = parse_failure(message)
    assert seed == 31
    payload = json.loads(artifact.read_text())
    assert payload["seed"] == 31
    assert payload["trace"] == list(trace)
    # Replay: the recorded trace must march the run to the identical
    # failure deterministically (same decision prefix, same error).
    with pytest.raises(dst.ScheduleFailure) as replay_info:
        dst.explore([seed], schedule_factory=lambda _s: ReplaySchedule(trace))
    assert replay_info.value.trace == list(trace)
    assert "injected invariant failure" in str(replay_info.value)
