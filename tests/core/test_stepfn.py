"""Step functions (Fig. 21) and parallel invocation (§6.2 threads)."""

import pytest

from repro.core import BeldiConfig, BeldiRuntime
from repro.core.stepfn import (
    Parallel,
    StepFunction,
    Task,
    TxnScope,
    register_step_function,
)
from repro.platform import FunctionCrashed


@pytest.fixture
def runtime():
    rt = BeldiRuntime(seed=23, config=BeldiConfig(
        ic_restart_delay=50.0, gc_t=1e12, lock_retry_backoff=5.0))
    yield rt
    rt.kernel.shutdown()


class TestParallelInvoke:
    def test_results_in_call_order(self, runtime):
        runtime.register_ssf("slow", lambda ctx, p: (ctx.sleep(50.0), p)[1])
        runtime.register_ssf("fast", lambda ctx, p: p)

        def driver(ctx, payload):
            return ctx.parallel_invoke([("slow", "a"), ("fast", "b"),
                                        ("slow", "c")])

        runtime.register_ssf("driver", driver)
        assert runtime.run_workflow("driver") == ["a", "b", "c"]

    def test_parallel_overlaps_in_time(self, runtime):
        rt = BeldiRuntime(seed=23, latency_scale=0.0)
        rt.register_ssf("napper", lambda ctx, p: ctx.sleep(100.0))
        durations = {}

        def driver(ctx, payload):
            start = ctx.platform_ctx.now
            ctx.parallel_invoke([("napper", None)] * 3)
            durations["parallel"] = ctx.platform_ctx.now - start
            start = ctx.platform_ctx.now
            for _ in range(3):
                ctx.sync_invoke("napper", None)
            durations["serial"] = ctx.platform_ctx.now - start
            return "ok"

        rt.register_ssf("driver", driver)
        rt.run_workflow("driver")
        assert durations["parallel"] < durations["serial"] / 2
        rt.kernel.shutdown()

    def test_parallel_inside_transaction(self, runtime):
        def bump(ctx, payload):
            n = ctx.read("kv", payload) or 0
            ctx.write("kv", payload, n + 1)
            return n + 1

        bump_ssf = runtime.register_ssf("bump", bump, tables=["kv"])

        def driver(ctx, payload):
            with ctx.transaction() as tx:
                ctx.parallel_invoke([("bump", "x"), ("bump", "y")])
            return tx.outcome

        runtime.register_ssf("driver", driver)
        assert runtime.run_workflow("driver") == "committed"
        assert bump_ssf.env.peek("kv", "x") == 1
        assert bump_ssf.env.peek("kv", "y") == 1

    def test_parallel_branch_abort_rolls_back_all(self, runtime):
        def writer(ctx, payload):
            ctx.write("kv", "w", payload)
            return "wrote"

        writer_ssf = runtime.register_ssf("writer", writer, tables=["kv"])

        def aborter(ctx, payload):
            ctx.abort_tx()

        runtime.register_ssf("aborter", aborter)

        def driver(ctx, payload):
            with ctx.transaction() as tx:
                ctx.parallel_invoke([("writer", "v1"), ("aborter", None)])
            return tx.outcome

        runtime.register_ssf("driver", driver)
        assert runtime.run_workflow("driver") == "aborted"
        assert writer_ssf.env.peek("kv", "w") is None

    def test_parallel_replay_is_deterministic(self, runtime):
        """Crash after the fan-out: replay must reuse the same callee ids
        (i.e., not re-execute any branch)."""
        from repro.platform.crashes import CrashOnce
        runtime.platform.crash_policy = CrashOnce("driver",
                                                  tag="body:done")

        def bump(ctx, payload):
            n = ctx.read("kv", "n") or 0
            ctx.write("kv", "n", n + 1)
            return n + 1

        bump_ssf = runtime.register_ssf("bump", bump, tables=["kv"])

        def driver(ctx, payload):
            ctx.parallel_invoke([("bump", None)] * 3)
            return "ok"

        runtime.register_ssf("driver", driver)
        outcome = {}

        def client():
            try:
                outcome["r"] = runtime.client_call("driver", None)
            except FunctionCrashed:
                outcome["crashed"] = True

        runtime.start_collectors(ic_period=100.0, gc_period=1e11)
        runtime.kernel.spawn(client)
        runtime.kernel.run(until=3_000.0)
        runtime.stop_collectors()
        runtime.kernel.run(until=5_000.0)
        assert bump_ssf.env.peek("kv", "n") == 3  # not 6


class TestStepFunctions:
    def test_sequential_chain(self, runtime):
        runtime.register_ssf("first", lambda ctx, p: p * 2)
        runtime.register_ssf("second", lambda ctx, p: p + 1)
        workflow = StepFunction("wf", [
            Task("doubled", "first"),
            Task("plus_one", "second",
                 payload=lambda r: r["doubled"]),
        ])
        register_step_function(runtime, workflow)
        results = runtime.run_workflow("wf", 5)
        assert results == {"doubled": 10, "plus_one": 11}

    def test_parallel_state(self, runtime):
        runtime.register_ssf("left", lambda ctx, p: "L")
        runtime.register_ssf("right", lambda ctx, p: "R")
        workflow = StepFunction("wf", [
            Parallel([[Task("l", "left")], [Task("r", "right")]]),
        ])
        register_step_function(runtime, workflow)
        assert runtime.run_workflow("wf") == {"l": "L", "r": "R"}

    def test_fig21_transactional_subgraph_commits(self, runtime):
        """begin -> SSF1 -> {SSF2, SSF3} -> end, all inside one txn."""
        def make_writer(table_env):
            def writer(ctx, payload):
                n = ctx.read("kv", payload) or 0
                ctx.write("kv", payload, n + 1)
                return n + 1
            return writer

        shared = runtime.create_env("team", tables=["kv"])
        for name in ("ssf1", "ssf2", "ssf3"):
            runtime.register_ssf(name, make_writer(shared), env=shared)
        workflow = StepFunction("wf", [
            TxnScope([
                Task("a", "ssf1", payload=lambda r: "k1"),
                Parallel([[Task("b", "ssf2",
                                payload=lambda r: "k2")],
                          [Task("c", "ssf3",
                                payload=lambda r: "k3")]]),
            ], on_abort="txn"),
        ])
        register_step_function(runtime, workflow)
        results = runtime.run_workflow("wf")
        assert results["txn"] == "committed"
        assert shared.peek("kv", "k1") == 1
        assert shared.peek("kv", "k2") == 1
        assert shared.peek("kv", "k3") == 1

    def test_fig21_abort_propagates_to_whole_scope(self, runtime):
        shared = runtime.create_env("team", tables=["kv"])

        def writer(ctx, payload):
            ctx.write("kv", payload, "dirty")
            return "wrote"

        def bouncer(ctx, payload):
            ctx.abort_tx()

        runtime.register_ssf("writer", writer, env=shared)
        runtime.register_ssf("bouncer", bouncer, env=shared)
        workflow = StepFunction("wf", [
            TxnScope([
                Task("w", "writer", payload=lambda r: "k1"),
                Task("x", "bouncer"),
            ], on_abort="txn"),
        ])
        register_step_function(runtime, workflow)
        results = runtime.run_workflow("wf")
        assert results["txn"] == "aborted"
        assert shared.peek("kv", "k1") is None  # rolled back

    def test_states_after_scope_still_run(self, runtime):
        runtime.register_ssf("inside", lambda ctx, p: "in")
        runtime.register_ssf("after", lambda ctx, p: "post")
        workflow = StepFunction("wf", [
            TxnScope([Task("t", "inside")], on_abort="txn"),
            Task("tail", "after"),
        ])
        register_step_function(runtime, workflow)
        results = runtime.run_workflow("wf")
        assert results["tail"] == "post"
        assert results["txn"] == "committed"

    def test_driver_crash_recovers_exactly_once(self, runtime):
        from repro.platform.crashes import CrashOnce
        runtime.platform.crash_policy = CrashOnce("wf", tag="body:done")

        def bump(ctx, payload):
            n = ctx.read("kv", "n") or 0
            ctx.write("kv", "n", n + 1)
            return n + 1

        bump_ssf = runtime.register_ssf("bump", bump, tables=["kv"])
        workflow = StepFunction("wf", [Task("one", "bump"),
                                       Task("two", "bump")])
        register_step_function(runtime, workflow)
        outcome = {}

        def client():
            try:
                outcome["r"] = runtime.client_call("wf", None)
            except FunctionCrashed:
                outcome["crashed"] = True

        runtime.start_collectors(ic_period=100.0, gc_period=1e11)
        runtime.kernel.spawn(client)
        runtime.kernel.run(until=3_000.0)
        runtime.stop_collectors()
        runtime.kernel.run(until=5_000.0)
        assert bump_ssf.env.peek("kv", "n") == 2  # not 4

    def test_ssf_count(self):
        workflow = StepFunction("wf", [
            Task("a", "x"),
            Parallel([[Task("b", "y")], [Task("c", "z")]]),
            TxnScope([Task("d", "w")]),
        ])
        assert workflow.ssf_count == 4
