"""TailCache staleness: every way a cached tail can rot, and the
fallback that must repair it without ever surfacing a stale value.

Three rot modes from the issue:

1. the cached row was *disconnected* by the GC (interior row whose log
   emptied — it keeps its ``NextRow``, so chasing re-joins the chain);
2. the cached row *filled and chained* (a successor appended);
3. the cached row's *lock state changed* under the cache (a commit
   flush released/stole it) — position caching must never serve the old
   owner or value.

Plus: a cached row the GC fully deleted, and flags-off equivalence.
"""

import pytest

from repro.core import BeldiConfig, BeldiRuntime, TailCache
from repro.core import daal
from repro.core.gc import make_garbage_collector


def build_runtime(**config):
    config.setdefault("gc_t", 500.0)
    config.setdefault("ic_restart_delay", 50.0)
    return BeldiRuntime(seed=11, config=BeldiConfig(**config))


def run_gc_now(runtime, env, times=1):
    handler = make_garbage_collector(runtime, env)
    results = []

    def client():
        class _Ctx:
            request_id = "gc-run"
            invocation_index = 0

            def crash_point(self, tag):
                pass

        for _ in range(times):
            results.append(handler(_Ctx(), {}))

    runtime.kernel.spawn(client)
    runtime.kernel.run()
    return results


def advance(runtime, ms):
    runtime.kernel.spawn(lambda: runtime.kernel.sleep(ms))
    runtime.kernel.run()


def chain_ids(store, table, key):
    return daal.load_skeleton(store, table, key).reachable


class TestStaleTailFallback:
    def test_cached_row_that_filled_and_chained(self):
        """Cache pinned to an old tail; writes chained past it. The read
        must chase to the real tail and return the newest value."""
        runtime = build_runtime(row_log_capacity=2, gc_t=1e12)

        def writer(ctx, payload):
            for value in payload:
                ctx.write("kv", "k", value)
            return "ok"

        ssf = runtime.register_ssf("w", writer, tables=["kv"])
        runtime.run_workflow("w", [1, 2])
        env = ssf.env
        table = env.data_table("kv")
        old_tail = chain_ids(env.store, table, "k")[-1]

        # Wind the cache back to the (current) tail, then chain past it.
        runtime.tail_cache.remember_tail(table, "k", old_tail)
        runtime.run_workflow("w", [3, 4, 5, 6, 7])
        runtime.tail_cache.remember_tail(table, "k", old_tail)

        assert env.peek("kv", "k") == 7  # chased, not stale
        # And the cache was repaired to the real tail.
        entry = runtime.tail_cache.tail_of(table, "k")
        assert entry.row_id == chain_ids(env.store, table, "k")[-1]
        runtime.kernel.shutdown()

    def test_cached_row_that_gc_disconnected(self):
        """Cache pinned to an interior row the GC disconnected: the row
        keeps its NextRow, so the fast path chases back onto the chain
        and still sees the live tail value."""
        runtime = build_runtime(row_log_capacity=1)

        def writer(ctx, payload):
            for value in payload:
                ctx.write("kv", "k", value)
            return "ok"

        ssf = runtime.register_ssf("w", writer, tables=["kv"])
        runtime.run_workflow("w", [1, 2, 3, 4])
        env = ssf.env
        table = env.data_table("kv")
        before = chain_ids(env.store, table, "k")
        assert len(before) >= 4
        interior = before[1]

        # GC pass 1 stamps finish times; after T the logs become
        # recyclable, entries are pruned, and interiors disconnect.
        run_gc_now(runtime, env)
        advance(runtime, 600.0)
        run_gc_now(runtime, env)
        after = chain_ids(env.store, table, "k")
        assert interior not in after  # actually disconnected
        disconnected = env.store.get(table, ("k", interior))
        assert disconnected is not None and "NextRow" in disconnected

        runtime.tail_cache.remember_tail(table, "k", interior)
        assert env.peek("kv", "k") == 4
        runtime.kernel.shutdown()

    def test_cached_row_that_gc_deleted(self):
        """Cache pinned to a row that dangled past T and was deleted:
        the get misses, the cache evicts, traversal recovers."""
        runtime = build_runtime(row_log_capacity=1)

        def writer(ctx, payload):
            for value in payload:
                ctx.write("kv", "k", value)
            return "ok"

        ssf = runtime.register_ssf("w", writer, tables=["kv"])
        runtime.run_workflow("w", [1, 2, 3, 4])
        env = ssf.env
        table = env.data_table("kv")
        interior = chain_ids(env.store, table, "k")[1]

        run_gc_now(runtime, env)          # stamp finish
        advance(runtime, 600.0)
        run_gc_now(runtime, env)          # prune + disconnect + stamp
        advance(runtime, 600.0)
        run_gc_now(runtime, env)          # delete the dangled row
        assert env.store.get(table, ("k", interior)) is None

        runtime.tail_cache.remember_tail(table, "k", interior)
        assert env.peek("kv", "k") == 4
        # The stale entry was evicted and replaced by the true tail.
        entry = runtime.tail_cache.tail_of(table, "k")
        assert entry is not None
        assert entry.row_id == chain_ids(env.store, table, "k")[-1]
        runtime.kernel.shutdown()

    def test_lock_stolen_under_cached_tail(self):
        """The cache pins positions, never lock state: after a commit
        flush releases the tail's lock, a cached-tail read of LockOwner
        sees the release, and a second locker can proceed."""
        runtime = build_runtime(gc_t=1e12)

        def locker(ctx, payload):
            ctx.lock("kv", "k")
            ctx.write("kv", "k", payload)
            ctx.unlock("kv", "k")
            return "ok"

        ssf = runtime.register_ssf("w", locker, tables=["kv"])
        ssf.env.seed("kv", "k", 0)
        runtime.run_workflow("w", 1)
        env = ssf.env
        table = env.data_table("kv")
        # Cache is hot from the first run; the tail row's lock cycled
        # under it. A fresh locked run must observe lock-free and win.
        entry = runtime.tail_cache.tail_of(table, "k")
        assert entry is not None
        row = env.store.get(table, ("k", entry.row_id))
        assert "LockOwner" not in row
        runtime.run_workflow("w", 2)
        assert env.peek("kv", "k") == 2
        runtime.kernel.shutdown()

    def test_release_lock_with_stale_cache_entry(self):
        """daal.release_lock aimed through a stale cached tail falls
        back instead of failing or unlocking the wrong row."""
        runtime = build_runtime(row_log_capacity=1, gc_t=1e12)

        def locker(ctx, payload):
            ctx.lock("kv", "k")
            for value in payload:
                ctx.write("kv", "k", value)
            return "ok"  # crashes-without-unlock analogue: lock stays

        ssf = runtime.register_ssf("w", locker, tables=["kv"])
        ssf.env.seed("kv", "k", 0)
        runtime.run_workflow("w", [1, 2, 3])
        env = ssf.env
        table = env.data_table("kv")
        tail = chain_ids(env.store, table, "k")[-1]
        owner = env.store.get(table, ("k", tail))["LockOwner"]["Id"]

        cache = runtime.tail_cache
        cache.remember_tail(table, "k", chain_ids(env.store, table,
                                                  "k")[0])
        released = daal.release_lock(env.store, table, "k", owner,
                                     cache=cache)
        assert released
        assert "LockOwner" not in env.store.get(table, ("k", tail))
        runtime.kernel.shutdown()


class TestFlagOffParity:
    def test_flags_off_touch_no_cache(self):
        runtime = build_runtime(tail_cache=False, batch_reads=False,
                                gc_t=1e12)

        def handler(ctx, payload):
            ctx.write("kv", "k", payload)
            return ctx.read("kv", "k")

        ssf = runtime.register_ssf("w", handler, tables=["kv"])
        assert runtime.run_workflow("w", 42) == 42
        stats = runtime.tail_cache.stats.snapshot()
        assert all(v == 0 for v in stats.values())
        assert len(runtime.tail_cache) == 0
        assert ssf.env.tail_cache is None
        runtime.kernel.shutdown()

    def test_flags_off_matches_seed_request_pattern(self):
        """Off = seed: every read/write pays its skeleton query."""
        runtime = build_runtime(tail_cache=False, gc_t=1e12)

        def handler(ctx, payload):
            for i in range(10):
                ctx.write("kv", "k", i)
                ctx.read("kv", "k")
            return "ok"

        ssf = runtime.register_ssf("w", handler, tables=["kv"])
        before = runtime.store.metering.copy()
        runtime.run_workflow("w")
        delta = runtime.store.metering.diff(before)
        # 10 writes probe (1 query each; +1 first-write re-probe after
        # head creation) and 10 reads traverse (1 query each).
        assert delta["query"].count >= 20
        runtime.kernel.shutdown()


class TestCacheUnit:
    def test_note_logged_write_bumps_log_size(self):
        cache = TailCache()
        cache.remember_tail("t", "k", "HEAD", 0)
        cache.note_logged_write("t", "k", "HEAD", "i#0")
        assert cache.tail_of("t", "k").log_size == 1
        assert cache.position_of("t", "k", "i#0") == "HEAD"

    def test_note_logged_write_on_other_row_resets_size(self):
        cache = TailCache()
        cache.remember_tail("t", "k", "HEAD", 3)
        cache.note_logged_write("t", "k", "row-9", "i#1")
        entry = cache.tail_of("t", "k")
        assert entry.row_id == "row-9"
        assert entry.log_size is None  # unknown, not guessed

    def test_drop_row_only_evicts_matching_tail(self):
        cache = TailCache()
        cache.remember_tail("t", "k", "row-1")
        cache.drop_row("t", "k", "row-2")
        assert cache.tail_of("t", "k").row_id == "row-1"
        cache.drop_row("t", "k", "row-1")
        assert cache.tail_of("t", "k") is None

    def test_position_eviction_bounded_and_taints(self):
        cache = TailCache(max_positions=10)
        for i in range(25):
            cache.remember_position("t", "k", f"inst-{i}#0", "HEAD")
        assert len(cache) <= 11  # tails + bounded positions
        # An instance whose position was evicted must no longer have its
        # misses trusted (they would read as "never executed").
        evicted = [i for i in range(25)
                   if cache.position_of("t", "k", f"inst-{i}#0") is None]
        assert evicted, "bound never hit?"
        for i in evicted:
            assert not cache.trusts_miss(f"inst-{i}#0")
        kept = [i for i in range(25) if i not in evicted]
        for i in kept:
            assert cache.trusts_miss(f"inst-{i}#0")

    def test_evicted_instance_replays_via_full_probe(self):
        """End-to-end taint check: after position eviction, a replayed
        write of the same instance must not re-execute."""
        runtime = build_runtime(gc_t=1e12)
        runtime.tail_cache._max_positions = 4  # force eviction

        def handler(ctx, payload):
            for i in range(8):
                ctx.write("kv", "k", i)
            ctx.crash_point("mid")
            return "ok"

        from repro.platform import CrashOnce
        from repro.platform.errors import FunctionCrashed
        runtime.platform.crash_policy = CrashOnce("w", "mid")
        ssf = runtime.register_ssf("w", handler, tables=["kv"])
        runtime.start_collectors(ic_period=100.0, gc_period=1e12)

        def client():
            try:
                runtime.client_call("w", None)
            except FunctionCrashed:
                pass

        runtime.kernel.spawn(client)
        runtime.kernel.run(until=10_000.0)
        runtime.stop_collectors()
        runtime.kernel.run(until=11_000.0)
        env = ssf.env
        table = env.data_table("kv")
        rows = [env.store.get(table, ("k", rid)) for rid in
                daal.load_skeleton(env.store, table, "k").reachable]
        entries = [k for row in rows for k in row["RecentWrites"]]
        assert len(entries) == len(set(entries)) == 8  # exactly once
        assert env.peek("kv", "k") == 7
        runtime.kernel.shutdown()


class TestEvictionRegressions:
    """Audit of capacity eviction under ``max_positions`` pressure."""

    def test_bound_holds_at_max_positions_one(self):
        """The degenerate bound: ``max // 2 == 0`` must still evict one
        entry (and taint its instance), not let the map grow forever."""
        cache = TailCache(max_positions=1)
        for i in range(20):
            cache.remember_position("t", "k", f"solo-{i}#0", "HEAD")
            assert len(cache._positions) <= 1
        # Every displaced instance was tainted on its way out.
        for i in range(19):
            assert not cache.trusts_miss(f"solo-{i}#0")
        assert cache.trusts_miss("solo-19#0")

    def test_every_dropped_instance_is_tainted(self):
        """One eviction wave drops many entries; each dropped entry's
        instance must be tainted — not just the first."""
        cache = TailCache(max_positions=8)
        for i in range(8):
            cache.remember_position("t", f"k{i}", f"wave-{i}#0", "HEAD")
        # The 9th insert evicts max(1, 8 // 2) = 4 entries at once.
        cache.remember_position("t", "k8", "wave-8#0", "HEAD")
        dropped = [i for i in range(8)
                   if cache.position_of("t", f"k{i}", f"wave-{i}#0")
                   is None]
        assert len(dropped) == 4
        for i in dropped:
            assert not cache.trusts_miss(f"wave-{i}#0"), (
                f"instance wave-{i} lost a position but is still trusted")

    def test_overwrite_does_not_evict(self):
        """Re-recording an already-present position is not growth and
        must not trigger an eviction wave (which would taint innocents)."""
        cache = TailCache(max_positions=4)
        for i in range(4):
            cache.remember_position("t", f"k{i}", f"keep-{i}#0", "HEAD")
        for _ in range(10):
            cache.remember_position("t", "k0", "keep-0#0", "row-2")
        for i in range(4):
            assert cache.trusts_miss(f"keep-{i}#0")
        assert cache.position_of("t", "k0", "keep-0#0") == "row-2"


class TestHashableKeyRegressions:
    """``_hashable`` must keep distinct keys in distinct cache slots."""

    def test_dict_key_does_not_collide_with_its_repr(self):
        cache = TailCache()
        dict_key = {"a": 1}
        str_key = repr(dict_key)  # "{'a': 1}"
        cache.remember_tail("t", dict_key, "row-dict")
        cache.remember_tail("t", str_key, "row-str")
        assert cache.tail_of("t", dict_key).row_id == "row-dict"
        assert cache.tail_of("t", str_key).row_id == "row-str"
        cache.forget("t", str_key)
        assert cache.tail_of("t", dict_key).row_id == "row-dict"

    def test_list_key_does_not_collide_with_its_repr(self):
        cache = TailCache()
        cache.remember_position("t", [1, 2], "a#0", "row-list")
        cache.remember_position("t", "[1, 2]", "a#1", "row-str")
        assert cache.position_of("t", [1, 2], "a#0") == "row-list"
        assert cache.position_of("t", [1, 2], "a#1") is None
        assert cache.position_of("t", "[1, 2]", "a#1") == "row-str"

    def test_equal_dicts_share_a_slot_regardless_of_order(self):
        cache = TailCache()
        cache.remember_tail("t", {"a": 1, "b": 2}, "row-x")
        entry = cache.tail_of("t", {"b": 2, "a": 1})
        assert entry is not None and entry.row_id == "row-x"

    def test_tuple_key_with_unhashable_part(self):
        cache = TailCache()
        cache.remember_tail("t", ("k", ["r1"]), "row-t")
        assert cache.tail_of("t", ("k", ["r1"])).row_id == "row-t"
        assert cache.tail_of("t", ("k", "['r1']")) is None

    def test_tag_lookalike_tuple_does_not_collide_with_list(self):
        """The canonical encoding must be injective even against a
        genuine tuple key that mimics the tag shape."""
        cache = TailCache()
        cache.remember_tail("t", ["a"], "row-list")
        cache.remember_tail("t", ("__list__", ("a",)), "row-tuple")
        assert cache.tail_of("t", ["a"]).row_id == "row-list"
        assert cache.tail_of("t", ("__list__", ("a",))).row_id == (
            "row-tuple")
