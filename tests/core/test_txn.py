"""Transactions (§6.2): opacity, wait-die, shadow tables, 2PC propagation."""

import pytest

from repro.core import BeldiConfig, BeldiRuntime, TxnAborted
from repro.platform import FunctionCrashed
from repro.platform.crashes import CrashOnce


@pytest.fixture
def runtime():
    rt = BeldiRuntime(seed=9, config=BeldiConfig(
        ic_restart_delay=50.0, gc_t=1e12, lock_retry_backoff=5.0,
        lock_retry_limit=200))
    yield rt
    rt.kernel.shutdown()


class TestSingleSSFTransactions:
    def test_commit_applies_writes(self, runtime):
        def handler(ctx, payload):
            with ctx.transaction() as tx:
                balance = ctx.read("accts", "ann") or 100
                ctx.write("accts", "ann", balance - 30)
                ctx.write("accts", "bob", 30)
            return tx.outcome

        ssf = runtime.register_ssf("transfer", handler, tables=["accts"])
        assert runtime.run_workflow("transfer") == "committed"
        assert ssf.env.peek("accts", "ann") == 70
        assert ssf.env.peek("accts", "bob") == 30

    def test_abort_discards_writes(self, runtime):
        def handler(ctx, payload):
            ctx.write("accts", "ann", 100)
            with ctx.transaction() as tx:
                ctx.write("accts", "ann", 0)
                ctx.abort_tx()
            return tx.outcome

        ssf = runtime.register_ssf("aborter", handler, tables=["accts"])
        assert runtime.run_workflow("aborter") == "aborted"
        assert ssf.env.peek("accts", "ann") == 100

    def test_abort_releases_locks(self, runtime):
        def aborter(ctx, payload):
            with ctx.transaction():
                ctx.write("accts", "x", 1)
                ctx.abort_tx()
            return "done"

        def writer(ctx, payload):
            ctx.write("accts", "x", 42)
            return ctx.read("accts", "x")

        shared = runtime.create_env("team", tables=["accts"])
        runtime.register_ssf("aborter", aborter, env=shared)
        runtime.register_ssf("writer", writer, env=shared)
        assert runtime.run_workflow("aborter") == "done"
        assert runtime.run_workflow("writer") == 42

    def test_read_your_writes(self, runtime):
        def handler(ctx, payload):
            ctx.write("kv", "doc", "original")
            with ctx.transaction():
                ctx.write("kv", "doc", "draft")
                inside = ctx.read("kv", "doc")
            after = ctx.read("kv", "doc")
            return [inside, after]

        runtime.register_ssf("ryw", handler, tables=["kv"])
        assert runtime.run_workflow("ryw") == ["draft", "draft"]

    def test_uncommitted_writes_invisible_before_commit(self, runtime):
        observed = {}

        def observer(ctx, payload):
            return ctx.read("kv", "doc")

        def writer(ctx, payload):
            ctx.write("kv", "doc", "before")
            with ctx.transaction():
                ctx.write("kv", "doc", "during")
                observed["mid"] = True
                ctx.sleep(100.0)
            return "done"

        shared = runtime.create_env("team", tables=["kv"])
        runtime.register_ssf("observer", observer, env=shared)
        runtime.register_ssf("writer", writer, env=shared)

        results = {}

        def writer_client():
            results["w"] = runtime.client_call("writer", None)

        def observer_client():
            # Runs while the writer's transaction is open. The write went
            # to the shadow table, so the observer reads the old value...
            # except 2PL blocks it on the lock until commit; either way it
            # must never see "during"-then-rollback ghosts.
            results["o"] = runtime.client_call("observer", None)

        runtime.kernel.spawn(writer_client)
        runtime.kernel.spawn(observer_client, delay=20.0)
        runtime.kernel.run()
        assert results["w"] == "done"
        assert results["o"] in ("before", "during")

    def test_cond_write_in_transaction(self, runtime):
        from repro.kvstore import Gt
        from repro.kvstore.expressions import path

        def handler(ctx, payload):
            ctx.write("stock", "widget", {"count": 1})
            outcomes = []
            with ctx.transaction():
                outcomes.append(ctx.cond_write(
                    "stock", "widget", {"count": 0},
                    Gt(path("Value", "count"), 0)))
                outcomes.append(ctx.cond_write(
                    "stock", "widget", {"count": -1},
                    Gt(path("Value", "count"), 0)))
            return outcomes

        ssf = runtime.register_ssf("seller", handler, tables=["stock"])
        assert runtime.run_workflow("seller") == [True, False]
        assert ssf.env.peek("stock", "widget") == {"count": 0}

    def test_sequential_transactions_in_one_instance(self, runtime):
        def handler(ctx, payload):
            with ctx.transaction() as t1:
                ctx.write("kv", "a", 1)
            with ctx.transaction() as t2:
                ctx.write("kv", "a", 2)
            return [t1.outcome, t2.outcome]

        ssf = runtime.register_ssf("seq", handler, tables=["kv"])
        assert runtime.run_workflow("seq") == ["committed", "committed"]
        assert ssf.env.peek("kv", "a") == 2


class TestCrossSSFTransactions:
    def _build_travel_like(self, runtime, hotel_rooms=1, flight_seats=1):
        """A miniature hotel+flight reservation pair (the paper's §7.1)."""
        from repro.kvstore import Gt
        from repro.kvstore.expressions import path

        def reserve_hotel(ctx, payload):
            ok = ctx.cond_write("rooms", payload["hotel"],
                                {"left": ctx.read("rooms",
                                                  payload["hotel"])["left"]
                                 - 1},
                                Gt(path("Value", "left"), 0))
            if not ok:
                ctx.abort_tx()
            return "hotel-ok"

        def reserve_flight(ctx, payload):
            seats = ctx.read("seats", payload["flight"])
            if seats["left"] <= 0:
                ctx.abort_tx()
            ctx.write("seats", payload["flight"],
                      {"left": seats["left"] - 1})
            return "flight-ok"

        self.hotel = runtime.register_ssf("hotel", reserve_hotel,
                                          tables=["rooms"])
        self.flight = runtime.register_ssf("flight", reserve_flight,
                                           tables=["seats"])
        self.hotel.env.seed("rooms", "H1", {"left": hotel_rooms})
        self.flight.env.seed("seats", "F1", {"left": flight_seats})

        def reserve(ctx, payload):
            with ctx.transaction() as tx:
                ctx.sync_invoke("hotel", {"hotel": "H1"})
                ctx.sync_invoke("flight", {"flight": "F1"})
            return tx.outcome

        runtime.register_ssf("reserve", reserve)

    def test_commit_spans_ssfs(self, runtime):
        self._build_travel_like(runtime)
        assert runtime.run_workflow("reserve") == "committed"
        assert self.hotel.env.peek("rooms", "H1") == {"left": 0}
        assert self.flight.env.peek("seats", "F1") == {"left": 0}

    def test_abort_in_second_callee_rolls_back_first(self, runtime):
        self._build_travel_like(runtime, hotel_rooms=5, flight_seats=0)
        assert runtime.run_workflow("reserve") == "aborted"
        # The hotel decrement must NOT have been applied.
        assert self.hotel.env.peek("rooms", "H1") == {"left": 5}
        assert self.flight.env.peek("seats", "F1") == {"left": 0}

    def test_all_or_nothing_under_contention(self, runtime):
        """N concurrent reservations against 1 room + 1 seat: exactly one
        commits, and room/seat counts never go negative."""
        self._build_travel_like(runtime, hotel_rooms=1, flight_seats=1)
        outcomes = []
        for i in range(4):
            runtime.kernel.spawn(
                lambda: outcomes.append(
                    runtime.client_call("reserve", None)),
                delay=float(i))
        runtime.kernel.run()
        assert sorted(outcomes) == ["aborted", "aborted", "aborted",
                                    "committed"]
        assert self.hotel.env.peek("rooms", "H1") == {"left": 0}
        assert self.flight.env.peek("seats", "F1") == {"left": 0}

    def test_commit_crash_recovers(self, runtime):
        """Crash mid-commit: replay finishes the flush and the signals."""
        self._build_travel_like(runtime)
        # Crash the coordinator right after its local flush, before it
        # propagated Commit to the callees.
        runtime.platform.crash_policy = _CrashOnTagSubstring(
            "reserve", "resolved-local")
        outcome = {}

        def client():
            try:
                outcome["r"] = runtime.client_call("reserve", None)
            except FunctionCrashed:
                outcome["crashed"] = True

        runtime.start_collectors(ic_period=100.0, gc_period=1e11)
        runtime.kernel.spawn(client)
        runtime.kernel.run(until=5_000.0)
        runtime.stop_collectors()
        runtime.kernel.run(until=8_000.0)
        assert self.hotel.env.peek("rooms", "H1") == {"left": 0}
        assert self.flight.env.peek("seats", "F1") == {"left": 0}
        # No lock may survive recovery.
        for env, table, key in ((self.hotel.env, "rooms", "H1"),
                                (self.flight.env, "seats", "F1")):
            rows = env.store.query(env.data_table(table), key).items
            assert all("LockOwner" not in r for r in rows)


class TestCrashInsideTransaction:
    def test_owner_crash_mid_body_does_not_abort(self, runtime):
        """Regression: a platform kill inside the with-block must NOT run
        the abort protocol. Releasing the locks on crash would let a
        concurrent transaction slip between this one's logged reads and
        its replayed commit — a lost update the chaos tests caught."""
        runtime.platform.crash_policy = CrashOnce(
            "spender", tag="invoke:2:start")

        def bump(ctx, payload):
            n = ctx.read("kv", payload) or 0
            ctx.write("kv", payload, n + 1)
            return n + 1

        bump_ssf = runtime.register_ssf("bump", bump, tables=["kv"])

        def spender(ctx, payload):
            with ctx.transaction() as tx:
                ctx.sync_invoke("bump", "x")
                # steps: 0 begin, 1 invoke; crash at the second invoke
                ctx.sync_invoke("bump", "y")
            return tx.outcome

        runtime.register_ssf("spender", spender)
        outcome = {}

        def client():
            try:
                outcome["r"] = runtime.client_call("spender", None)
            except FunctionCrashed:
                outcome["crashed"] = True

        runtime.start_collectors(ic_period=200.0, gc_period=1e11)
        runtime.kernel.spawn(client)
        runtime.kernel.run(until=150.0)  # after the crash, before the IC
        # Mid-recovery invariant: the crash must have left bump's lock on
        # "x" in place (owned by the unfinished transaction).
        table = bump_ssf.env.data_table("kv")
        rows = bump_ssf.env.store.query(table, "x").items
        assert any("LockOwner" in r for r in rows), \
            "crash released transaction locks prematurely"
        runtime.kernel.run(until=5_000.0)
        runtime.stop_collectors()
        runtime.kernel.run(until=8_000.0)
        # Replay must have committed exactly once: both keys bumped, all
        # locks released.
        assert bump_ssf.env.peek("kv", "x") == 1
        assert bump_ssf.env.peek("kv", "y") == 1
        for key in ("x", "y"):
            rows = bump_ssf.env.store.query(table, key).items
            assert all("LockOwner" not in r for r in rows)


class _CrashOnTagSubstring:
    """Crash the first time a crash-point tag contains a substring."""

    def __init__(self, function, needle):
        self.function = function
        self.needle = needle
        self.fired = False

    def should_crash(self, function, invocation_index, tag):
        if (not self.fired and function == self.function
                and self.needle in tag):
            self.fired = True
            return True
        return False


class TestWaitDie:
    def test_younger_dies_older_waits(self, runtime):
        """Two conflicting transactions in opposite lock orders must not
        deadlock: the younger dies, the older commits."""
        def mover(ctx, payload):
            first, second = payload["order"]
            with ctx.transaction() as tx:
                a = ctx.read("kv", first) or 0
                ctx.sleep(50.0)  # ensure the conflict window overlaps
                b = ctx.read("kv", second) or 0
                ctx.write("kv", first, a + 1)
                ctx.write("kv", second, b + 1)
            return tx.outcome

        ssf = runtime.register_ssf("mover", mover, tables=["kv"])
        outcomes = []
        runtime.kernel.spawn(lambda: outcomes.append(
            runtime.client_call("mover", {"order": ["x", "y"]})))
        runtime.kernel.spawn(lambda: outcomes.append(
            runtime.client_call("mover", {"order": ["y", "x"]})),
            delay=10.0)
        runtime.kernel.run()
        assert "committed" in outcomes
        # Both may commit (if serialized cleanly) or one aborted; but the
        # run must terminate and the committed effects must be atomic.
        x, y = ssf.env.peek("kv", "x"), ssf.env.peek("kv", "y")
        assert x == y  # each committed txn increments both

    def test_fig12_pattern_terminates_under_opacity(self, runtime):
        """The Fig. 12 OCC infinite loop: with opacity (2PL) the loop
        guard can never observe a fractured x/y pair, so it terminates."""
        def fig12(ctx, payload):
            with ctx.transaction() as tx:
                x = ctx.read("kv", "x")
                y = ctx.read("kv", "y")
                spins = 0
                while x != y:  # inconsistent snapshot would spin forever
                    spins += 1
                    assert spins < 3, "observed fractured read"
                    x = ctx.read("kv", "x")
                    y = ctx.read("kv", "y")
                ctx.write("kv", "x", x + 3)
                ctx.write("kv", "y", y + 3)
            return tx.outcome

        ssf = runtime.register_ssf("fig12", fig12, tables=["kv"])
        ssf.env.seed("kv", "x", 0)
        ssf.env.seed("kv", "y", 0)
        outcomes = []
        for i in range(3):
            runtime.kernel.spawn(lambda: outcomes.append(
                runtime.client_call("fig12", None)), delay=float(i))
        runtime.kernel.run()
        committed = outcomes.count("committed")
        assert committed >= 1
        assert ssf.env.peek("kv", "x") == committed * 3
        assert ssf.env.peek("kv", "y") == committed * 3


class TestTransactionInvariants:
    def test_money_conserved_under_concurrency(self, runtime):
        """Classic transfer invariant: total balance is conserved across
        every interleaving of concurrent transactional transfers."""
        def transfer(ctx, payload):
            src, dst, amount = payload["src"], payload["dst"], payload["n"]
            with ctx.transaction() as tx:
                a = ctx.read("accts", src)
                b = ctx.read("accts", dst)
                if a < amount:
                    ctx.abort_tx()
                ctx.write("accts", src, a - amount)
                ctx.write("accts", dst, b + amount)
            return tx.outcome

        ssf = runtime.register_ssf("transfer", transfer, tables=["accts"])
        ssf.env.seed("accts", "ann", 100)
        ssf.env.seed("accts", "bob", 100)
        transfers = [("ann", "bob", 30), ("bob", "ann", 45),
                     ("ann", "bob", 10), ("bob", "ann", 80),
                     ("ann", "bob", 60)]
        for i, (src, dst, n) in enumerate(transfers):
            runtime.kernel.spawn(
                lambda p={"src": src, "dst": dst, "n": n}:
                runtime.client_call("transfer", p),
                delay=float(i) * 3.0)
        runtime.kernel.run()
        ann = ssf.env.peek("accts", "ann")
        bob = ssf.env.peek("accts", "bob")
        assert ann + bob == 200
        assert ann >= 0 and bob >= 0

    def test_nontransactional_ssf_inherits_txn(self, runtime):
        """An SSF with no begin/end of its own, invoked inside a txn,
        automatically locks and shadows (§6.2)."""
        def plain_writer(ctx, payload):
            ctx.write("kv", "item", payload)
            return "wrote"

        writer = runtime.register_ssf("plain", plain_writer,
                                      tables=["kv"])

        def owner(ctx, payload):
            with ctx.transaction() as tx:
                ctx.sync_invoke("plain", "txn-value")
                if payload == "abort":
                    ctx.abort_tx()
            return tx.outcome

        runtime.register_ssf("owner", owner)
        assert runtime.run_workflow("owner", "commit") == "committed"
        assert writer.env.peek("kv", "item") == "txn-value"
        assert runtime.run_workflow("owner", "abort") == "aborted"
        assert writer.env.peek("kv", "item") == "txn-value"  # unchanged

    def test_async_invoke_rejected_in_txn(self, runtime):
        from repro.core.errors import NotSupported
        runtime.register_ssf("leaf", lambda ctx, p: "x")

        def owner(ctx, payload):
            with ctx.transaction():
                try:
                    ctx.async_invoke("leaf", None)
                except NotSupported:
                    return "rejected"
            return "allowed"

        runtime.register_ssf("owner", owner)
        assert runtime.run_workflow("owner") == "rejected"
