"""Docs link check: every relative link in docs/ and ROADMAP.md resolves.

Run by the tier-1 suite and by CI's docs link-check step, so a renamed
page or a typoed path fails the build instead of rotting silently.
"""

from __future__ import annotations

import pathlib
import re

REPO = pathlib.Path(__file__).resolve().parents[2]

#: Inline markdown links: [text](target). Images share the syntax.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Backticked repo paths we also verify (docs name many files inline).
CODE_PATH = re.compile(r"`((?:src|tests|benchmarks|docs|bench)/[^`*?]+?)`")
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> list[pathlib.Path]:
    files = sorted((REPO / "docs").glob("*.md"))
    files.append(REPO / "ROADMAP.md")
    assert files, "no docs found"
    return files


def test_required_pages_exist():
    for name in ("README.md", "architecture.md", "async_io.md",
                 "benchmarks.md", "sharding.md", "replication.md"):
        assert (REPO / "docs" / name).is_file(), f"docs/{name} missing"


def test_relative_links_resolve():
    broken = []
    for doc in doc_files():
        text = doc.read_text()
        for match in LINK.finditer(text):
            target = match.group(1).split("#", 1)[0]
            if not target or target.startswith(EXTERNAL):
                continue
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                broken.append(f"{doc.relative_to(REPO)} -> {target}")
    assert not broken, "broken relative links:\n" + "\n".join(broken)


def test_backticked_repo_paths_exist():
    """Docs cite source files by path; keep the citations honest.

    Only plain file paths are checked (no globs, no `::`-qualified test
    ids, no `{a,b}` shorthands, no `module.symbol` dotted references,
    no elided `…` listings) — a cited path must end in a real file
    extension to be held to existence.
    """
    extensions = (".py", ".md", ".txt", ".yml", ".yaml", ".json")
    broken = []
    for doc in doc_files():
        text = doc.read_text()
        for match in CODE_PATH.finditer(text):
            target = match.group(1)
            if any(ch in target for ch in "{}<>:,…") or " " in target:
                continue
            if not target.endswith(extensions):
                continue
            if not (REPO / target).exists():
                broken.append(f"{doc.relative_to(REPO)} -> {target}")
    assert not broken, "stale repo paths in docs:\n" + "\n".join(broken)
