"""Overlap-scope semantics: max-not-sum, branches, capacity, nesting."""

from __future__ import annotations

from repro.core import BeldiConfig, BeldiRuntime
from repro.kvstore import KVStore, NullTimeSource, ShardedStore, overlap
from repro.sim.latency import LatencyModel, LatencySpec
from repro.sim.randsrc import RandomSource

# Deterministic distributions: median == p99 collapses sigma to zero.
SPECS = {
    "db.read": LatencySpec(median=4.0, p99=4.0),
    "db.write": LatencySpec(median=10.0, p99=10.0),
    "db.batch_write": LatencySpec(median=6.0, p99=6.0),
}


def make_store(capacity=None):
    store = KVStore(time_source=NullTimeSource(),
                    latency=LatencyModel(RandomSource(1), specs=SPECS,
                                         scale=1.0),
                    capacity=capacity)
    store.create_table("t", hash_key="K")
    return store


def fan_out(store, n=5, enabled=True):
    with overlap(store, enabled=enabled) as scope:
        for i in range(n):
            with scope.branch():
                store.put("t", {"K": i})


def test_sequential_pays_the_sum():
    store = make_store()
    for i in range(5):
        store.put("t", {"K": i})
    assert store.time.now() == 50.0


def test_overlap_pays_the_max():
    store = make_store()
    fan_out(store)
    assert store.time.now() == 10.0
    # All mutations landed regardless of the collapsed time.
    assert store.item_count("t") == 5


def test_disabled_scope_is_the_sequential_model():
    store = make_store()
    fan_out(store, enabled=False)
    assert store.time.now() == 50.0


def test_ops_within_a_branch_serialize():
    store = make_store()
    with overlap(store) as scope:
        for i in range(5):
            with scope.branch():
                store.get("t", i)          # 4 ms
                store.put("t", {"K": i})   # + 10 ms
    assert store.time.now() == 14.0


def test_capacity_still_binds_under_overlap():
    # One server: overlapped arrivals queue; two servers: halved.
    store = make_store(capacity=1)
    fan_out(store)
    assert store.time.now() == 50.0
    store = make_store(capacity=2)
    fan_out(store)
    assert store.time.now() == 30.0  # ceil(5/2) waves of 10 ms


def test_nested_scope_folds_as_a_composite_op():
    store = make_store()
    with overlap(store) as outer:
        with outer.branch():
            store.put("t", {"K": "a"})            # 0 -> 10
            with overlap(store) as inner:          # starts at 10
                for i in range(3):
                    with inner.branch():
                        store.put("t", {"K": i})   # each 10 -> 20
            store.put("t", {"K": "b"})             # 20 -> 30
        with outer.branch():
            store.put("t", {"K": "c"})             # 0 -> 10
    assert store.time.now() == 30.0


def test_sharded_fan_out_shares_one_frontier():
    nodes = [KVStore(time_source=NullTimeSource(),
                     latency=LatencyModel(RandomSource(i), specs=SPECS,
                                          scale=1.0),
                     shard_id=i)
             for i in range(2)]
    store = ShardedStore(nodes, async_io=True)
    store.create_table("t", hash_key="K")
    # 6 single-key puts, sequential: routed per shard, each pays 10.
    keys = [f"k{i}" for i in range(6)]
    with overlap(store) as scope:
        for key in keys:
            with scope.branch():
                store.put("t", {"K": key})
    # Each node's clock advanced by the shared frontier exactly once.
    assert {node.time.now() for node in store.nodes} == {10.0}


def test_runtime_batch_write_overlaps_across_shards():
    # A facade batch_write at shards=2 pays one overlapped round trip.
    runtime = BeldiRuntime(seed=3, latency_scale=1.0,
                           config=BeldiConfig(async_io=True),
                           shards=2)
    runtime.store.create_table("t", hash_key="K")
    items = [{"K": f"k{i}"} for i in range(8)]
    spread = {runtime.store.shard_for("t", item["K"]) for item in items}
    assert spread == {0, 1}

    elapsed = {}

    def writer():
        start = runtime.kernel.now
        runtime.store.batch_write("t", puts=items)
        elapsed["batched"] = runtime.kernel.now - start

    runtime.kernel.spawn(writer)
    runtime.kernel.run()
    per_shard = [runtime.store.nodes[shard].latency.sample(
        "db.batch_write") for shard in (0, 1)]
    # Overlapped: strictly less than any plausible two-round-trip sum.
    assert 0 < elapsed["batched"] < 2 * max(per_shard) + 50
    runtime.kernel.shutdown()
