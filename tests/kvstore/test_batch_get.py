"""``KVStore.batch_get``: semantics, metering, and fault injection."""

import pytest

from repro.kvstore import KVStore, ThrottledError
from repro.kvstore.expressions import Projection
from repro.kvstore.faults import FaultPolicy
from repro.sim import LatencyModel, RandomSource, SimKernel
from repro.kvstore import KernelTimeSource


@pytest.fixture
def store():
    s = KVStore()
    s.create_table("data", hash_key="Key")
    s.create_table("ranged", hash_key="Key", range_key="RowId")
    for i in range(5):
        s.put("data", {"Key": f"k{i}", "V": i})
        s.put("ranged", {"Key": "item", "RowId": f"r{i}", "V": i})
    return s


class TestSemantics:
    def test_results_align_with_keys(self, store):
        items = store.batch_get("data", ["k3", "k0", "k4"])
        assert [item["V"] for item in items] == [3, 0, 4]

    def test_missing_keys_come_back_as_none(self, store):
        items = store.batch_get("data", ["k1", "nope", "k2", "gone"])
        assert items[0]["V"] == 1
        assert items[1] is None
        assert items[2]["V"] == 2
        assert items[3] is None

    def test_empty_batch_is_free(self, store):
        before = store.metering.copy()
        assert store.batch_get("data", []) == []
        assert store.metering.diff(before) == {}

    def test_composite_keys_and_projection(self, store):
        items = store.batch_get(
            "ranged", [("item", "r2"), ("item", "r9"), ("item", "r0")],
            projection=Projection.of("V"))
        assert items[0] == {"V": 2}
        assert items[1] is None
        assert items[2] == {"V": 0}

    def test_duplicate_keys_allowed(self, store):
        items = store.batch_get("data", ["k1", "k1"])
        assert [item["V"] for item in items] == [1, 1]


class TestMetering:
    def test_one_round_trip_for_n_rows(self, store):
        before = store.metering.copy()
        store.batch_get("data", [f"k{i}" for i in range(5)])
        delta = store.metering.diff(before)
        assert set(delta) == {"batch_get"}
        assert delta["batch_get"].count == 1     # one request...
        assert delta["batch_get"].items == 5     # ...covering five rows

    def test_read_units_match_n_singleton_gets(self, store):
        """Batching saves round trips, not read units: the provider
        still charges per row touched."""
        keys = [f"k{i}" for i in range(5)]
        before = store.metering.copy()
        store.batch_get("data", keys)
        batched = store.metering.diff(before)["batch_get"]

        singleton = KVStore()
        singleton.create_table("data", hash_key="Key")
        for i in range(5):
            singleton.put("data", {"Key": f"k{i}", "V": i})
        before = singleton.metering.copy()
        for key in keys:
            singleton.get("data", key)
        gets = singleton.metering.diff(before)["read"]

        assert gets.count == 5
        assert batched.count == 1
        assert batched.read_units == pytest.approx(gets.read_units)
        assert batched.bytes_read == gets.bytes_read

    def test_missing_rows_still_pay_a_unit(self, store):
        before = store.metering.copy()
        store.batch_get("data", ["nope-1", "nope-2"])
        delta = store.metering.diff(before)["batch_get"]
        assert delta.read_units >= 2.0


class TestFaultInjection:
    def test_single_key_throttle_raises(self):
        """A 1-key batch has no partial to serve: throttle = rejection,
        matching the point-read contract."""
        s = KVStore(rand=RandomSource(1),
                    faults=FaultPolicy.for_ops(
                        ["db.batch_read"], throttle_probability=1.0))
        s.create_table("data", hash_key="Key")
        s.put("data", {"Key": "a", "V": 1})
        with pytest.raises(ThrottledError):
            s.batch_get("data", ["a"])
        # Nothing was metered: the batch failed as one unit.
        assert "batch_get" not in s.metering.ops

    def test_throttle_serves_a_partial_prefix(self):
        """DynamoDB-style partial results: a throttled multi-key batch
        serves a prefix and reports the rest as unprocessed."""
        s = KVStore(rand=RandomSource(2),
                    faults=FaultPolicy.for_ops(
                        ["db.batch_read"], throttle_probability=1.0))
        s.create_table("data", hash_key="Key")
        for i in range(6):
            s.put("data", {"Key": f"k{i}", "V": i})
        keys = [f"k{i}" for i in range(6)]
        saw_partial = False
        for _ in range(50):
            try:
                result = s.batch_get("data", keys)
            except ThrottledError:
                continue  # served == 0 this draw
            assert result.unprocessed_keys, "throttled batch came whole"
            saw_partial = True
            served = len(keys) - len(result.unprocessed_keys)
            # The served prefix is real data, aligned with the request.
            for i in range(served):
                assert result[i] == {"Key": f"k{i}", "V": i}
            # Unserved positions are None and listed for retry.
            for i in result.unprocessed_indexes:
                assert result[i] is None
            assert result.unprocessed_keys == keys[served:]
        assert saw_partial

    def test_partial_batch_meters_only_served_rows(self):
        s = KVStore(rand=RandomSource(3),
                    faults=FaultPolicy.for_ops(
                        ["db.batch_read"], throttle_probability=1.0))
        s.create_table("data", hash_key="Key")
        for i in range(6):
            s.put("data", {"Key": f"k{i}", "V": i})
        keys = [f"k{i}" for i in range(6)]
        while True:
            before = s.metering.copy()
            try:
                result = s.batch_get("data", keys)
                break
            except ThrottledError:
                assert s.metering.diff(before) == {}
        served = len(keys) - len(result.unprocessed_keys)
        delta = s.metering.diff(before)["batch_get"]
        assert delta.count == 1
        assert delta.items == served

    def test_one_throttle_draw_per_batch_not_per_row(self):
        """p=0.5 throttling over many 8-row batches: if each *row* drew
        independently, nearly every batch would be degraded
        (1 - 0.5^8 ≈ 99.6%); a per-batch draw degrades about half."""
        s = KVStore(rand=RandomSource(7),
                    faults=FaultPolicy(throttle_probability=0.5))
        s.create_table("data", hash_key="Key")
        keys = [f"k{i}" for i in range(8)]
        whole = 0
        for _ in range(200):
            try:
                result = s.batch_get("data", keys)
            except ThrottledError:
                continue
            if result.complete:
                whole += 1
        assert 60 <= whole <= 140  # ~100 expected; ~1 if per-row

    def test_batch_get_all_retries_the_remainder(self):
        """The caller-side loop completes a batch under heavy batch
        throttling by retrying unprocessed keys, falling back to point
        gets (which this policy leaves alone) if batches stay degraded."""
        from repro.kvstore import batch_get_all
        s = KVStore(rand=RandomSource(11),
                    faults=FaultPolicy.for_ops(
                        ["db.batch_read"], throttle_probability=1.0))
        s.create_table("data", hash_key="Key")
        for i in range(8):
            s.put("data", {"Key": f"k{i}", "V": i})
        rows = batch_get_all(s, "data",
                             [f"k{i}" for i in range(8)] + ["missing"])
        assert [r["V"] for r in rows[:8]] == list(range(8))
        assert rows[8] is None

    def test_op_filter_targets_batches_only(self):
        """``only_ops`` scopes the policy: batch reads throttle, point
        reads sail through."""
        s = KVStore(rand=RandomSource(3),
                    faults=FaultPolicy.for_ops(
                        ["db.batch_read"], throttle_probability=1.0))
        s.create_table("data", hash_key="Key")
        s.put("data", {"Key": "a", "V": 1})
        assert s.get("data", "a")["V"] == 1
        with pytest.raises(ThrottledError):
            s.batch_get("data", ["a"])

    def test_latency_spike_applies_per_batch(self):
        kernel = SimKernel(seed=5)
        rand = RandomSource(5)
        spiky = KVStore(
            time_source=KernelTimeSource(kernel),
            latency=LatencyModel(rand.child("lat")),
            rand=rand.child("store"),
            faults=FaultPolicy(spike_probability=1.0,
                               spike_multiplier=10.0))
        spiky.create_table("data", hash_key="Key")
        durations = []

        def body():
            start = kernel.now
            spiky.batch_get("data", ["a", "b"])
            durations.append(kernel.now - start)

        kernel.spawn(body)
        kernel.run()
        kernel.shutdown()
        assert durations[0] > 0.0
