"""``KVStore.batch_get``: semantics, metering, and fault injection."""

import pytest

from repro.kvstore import KVStore, ThrottledError
from repro.kvstore.expressions import Projection
from repro.kvstore.faults import FaultPolicy
from repro.sim import LatencyModel, RandomSource, SimKernel
from repro.kvstore import KernelTimeSource


@pytest.fixture
def store():
    s = KVStore()
    s.create_table("data", hash_key="Key")
    s.create_table("ranged", hash_key="Key", range_key="RowId")
    for i in range(5):
        s.put("data", {"Key": f"k{i}", "V": i})
        s.put("ranged", {"Key": "item", "RowId": f"r{i}", "V": i})
    return s


class TestSemantics:
    def test_results_align_with_keys(self, store):
        items = store.batch_get("data", ["k3", "k0", "k4"])
        assert [item["V"] for item in items] == [3, 0, 4]

    def test_missing_keys_come_back_as_none(self, store):
        items = store.batch_get("data", ["k1", "nope", "k2", "gone"])
        assert items[0]["V"] == 1
        assert items[1] is None
        assert items[2]["V"] == 2
        assert items[3] is None

    def test_empty_batch_is_free(self, store):
        before = store.metering.copy()
        assert store.batch_get("data", []) == []
        assert store.metering.diff(before) == {}

    def test_composite_keys_and_projection(self, store):
        items = store.batch_get(
            "ranged", [("item", "r2"), ("item", "r9"), ("item", "r0")],
            projection=Projection.of("V"))
        assert items[0] == {"V": 2}
        assert items[1] is None
        assert items[2] == {"V": 0}

    def test_duplicate_keys_allowed(self, store):
        items = store.batch_get("data", ["k1", "k1"])
        assert [item["V"] for item in items] == [1, 1]


class TestMetering:
    def test_one_round_trip_for_n_rows(self, store):
        before = store.metering.copy()
        store.batch_get("data", [f"k{i}" for i in range(5)])
        delta = store.metering.diff(before)
        assert set(delta) == {"batch_get"}
        assert delta["batch_get"].count == 1     # one request...
        assert delta["batch_get"].items == 5     # ...covering five rows

    def test_read_units_match_n_singleton_gets(self, store):
        """Batching saves round trips, not read units: the provider
        still charges per row touched."""
        keys = [f"k{i}" for i in range(5)]
        before = store.metering.copy()
        store.batch_get("data", keys)
        batched = store.metering.diff(before)["batch_get"]

        singleton = KVStore()
        singleton.create_table("data", hash_key="Key")
        for i in range(5):
            singleton.put("data", {"Key": f"k{i}", "V": i})
        before = singleton.metering.copy()
        for key in keys:
            singleton.get("data", key)
        gets = singleton.metering.diff(before)["read"]

        assert gets.count == 5
        assert batched.count == 1
        assert batched.read_units == pytest.approx(gets.read_units)
        assert batched.bytes_read == gets.bytes_read

    def test_missing_rows_still_pay_a_unit(self, store):
        before = store.metering.copy()
        store.batch_get("data", ["nope-1", "nope-2"])
        delta = store.metering.diff(before)["batch_get"]
        assert delta.read_units >= 2.0


class TestFaultInjection:
    def test_throttle_rejects_the_whole_batch(self):
        s = KVStore(rand=RandomSource(1),
                    faults=FaultPolicy.for_ops(
                        ["db.batch_read"], throttle_probability=1.0))
        s.create_table("data", hash_key="Key")
        s.put("data", {"Key": "a", "V": 1})
        with pytest.raises(ThrottledError):
            s.batch_get("data", ["a", "b", "c"])
        # Nothing was metered: the batch failed as one unit.
        assert "batch_get" not in s.metering.ops

    def test_one_throttle_draw_per_batch_not_per_row(self):
        """p=0.5 throttling over many 8-row batches: if each *row* drew
        independently, nearly every batch would die (1 - 0.5^8 ≈ 99.6%);
        a per-batch draw dies about half the time."""
        s = KVStore(rand=RandomSource(7),
                    faults=FaultPolicy(throttle_probability=0.5))
        s.create_table("data", hash_key="Key")
        keys = [f"k{i}" for i in range(8)]
        outcomes = []
        for _ in range(200):
            try:
                s.batch_get("data", keys)
                outcomes.append(True)
            except ThrottledError:
                outcomes.append(False)
        survived = sum(outcomes)
        assert 60 <= survived <= 140  # ~100 expected; ~1 if per-row

    def test_op_filter_targets_batches_only(self):
        """``only_ops`` scopes the policy: batch reads throttle, point
        reads sail through."""
        s = KVStore(rand=RandomSource(3),
                    faults=FaultPolicy.for_ops(
                        ["db.batch_read"], throttle_probability=1.0))
        s.create_table("data", hash_key="Key")
        s.put("data", {"Key": "a", "V": 1})
        assert s.get("data", "a")["V"] == 1
        with pytest.raises(ThrottledError):
            s.batch_get("data", ["a"])

    def test_latency_spike_applies_per_batch(self):
        kernel = SimKernel(seed=5)
        rand = RandomSource(5)
        spiky = KVStore(
            time_source=KernelTimeSource(kernel),
            latency=LatencyModel(rand.child("lat")),
            rand=rand.child("store"),
            faults=FaultPolicy(spike_probability=1.0,
                               spike_multiplier=10.0))
        spiky.create_table("data", hash_key="Key")
        durations = []

        def body():
            start = kernel.now
            spiky.batch_get("data", ["a", "b"])
            durations.append(kernel.now - start)

        kernel.spawn(body)
        kernel.run()
        kernel.shutdown()
        assert durations[0] > 0.0
