"""``batch_write`` edge cases: partial throttles, fault targeting,
metering parity, sharded fan-out, and replicated shipping."""

from __future__ import annotations

import pytest

from repro.kvstore import (
    KVStore,
    MAX_BATCH_WRITE_ITEMS,
    ReplicaGroup,
    ShardedStore,
    ThrottledError,
    batch_write_all,
)
from repro.kvstore.faults import FaultPolicy
from repro.sim.randsrc import RandomSource


def make_store(faults=None, shard_id=None):
    store = KVStore(faults=faults, shard_id=shard_id,
                    rand=RandomSource(7, "test"))
    store.create_table("t", hash_key="K")
    return store


def items(n, start=0):
    return [{"K": f"k{i}", "V": i} for i in range(start, start + n)]


# ---------------------------------------------------------------------------
# Basics
# ---------------------------------------------------------------------------

def test_puts_and_deletes_apply_in_one_round_trip():
    store = make_store()
    store.put("t", {"K": "old"})
    result = store.batch_write("t", puts=items(3), deletes=["old"])
    assert result.complete
    assert store.get("t", "old") is None
    assert store.get("t", "k1") == {"K": "k1", "V": 1}
    rec = store.metering.ops["batch_write"]
    assert rec.count == 1 and rec.items == 4


def test_empty_batch_is_free():
    store = make_store()
    assert store.batch_write("t").complete
    assert "batch_write" not in store.metering.ops


def test_oversized_batch_rejected():
    store = make_store()
    with pytest.raises(ValueError):
        store.batch_write("t", puts=items(MAX_BATCH_WRITE_ITEMS + 1))


def test_put_and_delete_of_same_key_rejected():
    store = make_store()
    with pytest.raises(ValueError):
        store.batch_write("t", puts=[{"K": "x"}], deletes=["x"])


def test_duplicate_keys_in_one_batch_rejected():
    # DynamoDB fails the whole request on any repeated key.
    store = make_store()
    with pytest.raises(ValueError):
        store.batch_write("t", puts=[{"K": "x", "V": 1},
                                     {"K": "x", "V": 2}])
    with pytest.raises(ValueError):
        store.batch_write("t", deletes=["x", "x"])


def test_generator_arguments_are_materialized():
    # A replicated batch fed from generators must still ship every
    # applied row to the followers.
    group = replica_group()
    group.batch_write("t", puts=(dict(item) for item in items(3)),
                      deletes=(key for key in ()))
    for follower in group.followers:
        for item in items(3):
            assert follower._tables["t"].get((item["K"],)) is not None


# ---------------------------------------------------------------------------
# Throttled partial results (DynamoDB UnprocessedItems)
# ---------------------------------------------------------------------------

def throttled_store(probability=1.0):
    return make_store(faults=FaultPolicy.for_ops(
        ["db.batch_write"], throttle_probability=probability))


def test_throttle_serves_prefix_and_reports_remainder():
    store = throttled_store()
    # Try until the partial draw serves a nonzero prefix.
    for attempt in range(20):
        try:
            result = store.batch_write("t", puts=items(10, start=attempt * 10))
        except ThrottledError:
            continue
        assert not result.complete
        served = 10 - len(result.unprocessed_puts)
        assert 0 < served < 10
        # Applied rows are exactly the prefix; the rest never landed.
        batch = items(10, start=attempt * 10)
        for i, item in enumerate(batch):
            present = store.get("t", item["K"]) is not None
            assert present == (i < served)
        return
    pytest.fail("partial batch_write never served a prefix")


def test_single_item_throttle_raises():
    store = throttled_store()
    with pytest.raises(ThrottledError):
        store.batch_write("t", puts=items(1))


def test_only_ops_scoping_leaves_point_writes_alone():
    store = throttled_store()
    store.put("t", {"K": "fine"})  # not a batch op: unaffected
    assert store.get("t", "fine") is not None


def test_batch_write_all_retries_to_completion():
    store = make_store(faults=FaultPolicy.for_ops(
        ["db.batch_write"], throttle_probability=0.6))
    batch_write_all(store, "t", puts=items(40), deletes=[])
    for item in items(40):
        assert store.get("t", item["K"]) is not None


def test_batch_write_all_falls_back_to_point_writes():
    store = throttled_store()  # every batch round throttles
    batch_write_all(store, "t", puts=items(6), attempts=2)
    for item in items(6):
        assert store.get("t", item["K"]) is not None
    # The fallback really was the point path.
    assert store.metering.ops["write"].count >= 1


# ---------------------------------------------------------------------------
# Metering parity: batched writes bill like the sequential path
# ---------------------------------------------------------------------------

def test_write_unit_parity_with_sequential_path():
    wide = {"K": "wide", "pad": "x" * 3000}  # > 1 write unit
    sequential = make_store()
    sequential.put("t", {"K": "seed-del"})
    for item in items(3):
        sequential.put("t", dict(item))
    sequential.put("t", dict(wide))
    sequential.delete("t", "seed-del")

    batched = make_store()
    batched.put("t", {"K": "seed-del"})
    base = batched.metering.copy()
    batched.batch_write("t", puts=items(3) + [dict(wide)],
                        deletes=["seed-del"])
    delta = batched.metering.diff(base)

    seq_units = (sequential.metering.ops["write"].write_units
                 + sequential.metering.ops["delete"].write_units
                 - 1.0)  # minus the seed put's unit
    assert delta["batch_write"].write_units == pytest.approx(seq_units)
    # ...at a fifth of the round trips.
    assert delta["batch_write"].count == 1


# ---------------------------------------------------------------------------
# Sharded fan-out
# ---------------------------------------------------------------------------

def sharded(faults_by_shard=None, async_io=False):
    nodes = []
    for i in range(2):
        faults = (faults_by_shard or {}).get(i)
        nodes.append(KVStore(shard_id=i, faults=faults,
                             rand=RandomSource(11 + i, "node")))
    store = ShardedStore(nodes, async_io=async_io)
    store.create_table("t", hash_key="K")
    return store


def test_sharded_batch_write_routes_and_merges():
    store = sharded()
    batch = items(8)
    assert store.batch_write("t", puts=batch).complete
    per_shard = store.items_per_shard("t")
    assert sum(per_shard) == 8 and all(count > 0 for count in per_shard)
    for item in batch:
        assert store.get("t", item["K"]) is not None


def test_only_shards_fault_targets_one_node():
    sick = FaultPolicy(throttle_probability=1.0,
                       only_ops=frozenset(["db.batch_write"]),
                       only_shards=frozenset([0]))
    store = sharded(faults_by_shard={0: sick, 1: None})
    batch = items(12)
    result = store.batch_write("t", puts=batch)
    # Shard 1's share applied; shard 0's share is unprocessed (its
    # single-shard batches raise, larger ones partially serve).
    unprocessed_keys = {item["K"] for item in result.unprocessed_puts}
    for item in batch:
        shard = store.shard_for("t", item["K"])
        present = store.get("t", item["K"]) is not None
        if shard == 1:
            assert present and item["K"] not in unprocessed_keys
        else:
            assert present == (item["K"] not in unprocessed_keys)
    assert any(store.shard_for("t", key) == 0 for key in unprocessed_keys)


def test_sharded_raises_only_when_nothing_applied_anywhere():
    throttle_all = FaultPolicy(throttle_probability=1.0,
                               only_ops=frozenset(["db.batch_write"]))
    store = sharded(faults_by_shard={0: throttle_all, 1: throttle_all})
    # Single item per shard -> every node raises -> facade raises.
    with pytest.raises(ThrottledError):
        store.batch_write("t", puts=items(1))


# ---------------------------------------------------------------------------
# Replication: applied rows ship to followers
# ---------------------------------------------------------------------------

def replica_group(async_io=False):
    leader = KVStore(rand=RandomSource(3, "leader"))
    followers = [KVStore(rand=RandomSource(4 + i, "f"))
                 for i in range(2)]
    group = ReplicaGroup(leader, followers,
                         rand=RandomSource(9, "group"),
                         lag_scale=0.0, async_io=async_io)
    group.create_table("t", hash_key="K")
    return group


@pytest.mark.parametrize("async_io", [False, True])
def test_replica_batch_write_ships_to_followers(async_io):
    group = replica_group(async_io=async_io)
    group.put("t", {"K": "gone"})
    before = group.stats.shipped
    group.batch_write("t", puts=items(4), deletes=["gone"])
    assert group.stats.shipped == before + 5
    for follower in group.followers:
        for item in items(4):
            assert follower._tables["t"].get((item["K"],)) is not None
        assert follower._tables["t"].get(("gone",)) is None
