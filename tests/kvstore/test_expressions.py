"""Unit tests for the condition/update expression language."""

import pytest

from repro.kvstore import (
    Add,
    And,
    AttrExists,
    AttrNotExists,
    BeginsWith,
    Between,
    Contains,
    Delete,
    Eq,
    Ge,
    Gt,
    IfNotExists,
    In,
    Le,
    ListAppend,
    Lt,
    Ne,
    Not,
    Or,
    PathRef,
    Plus,
    Remove,
    Set,
    SizeGe,
    SizeLt,
    Value,
    path,
)
from repro.kvstore.errors import ValidationError
from repro.kvstore.expressions import Projection, apply_updates


class TestPaths:
    def test_top_level_get(self):
        present, value = path("a").get({"a": 1})
        assert (present, value) == (True, 1)

    def test_missing_attr(self):
        assert path("b").get({"a": 1}) == (False, None)

    def test_missing_item(self):
        assert path("a").get(None) == (False, None)

    def test_nested_map_get(self):
        item = {"m": {"x": {"y": 5}}}
        assert path("m", "x", "y").get(item) == (True, 5)

    def test_list_index_get(self):
        assert path("l", 1).get({"l": [10, 20]}) == (True, 20)

    def test_list_index_out_of_range(self):
        assert path("l", 5).get({"l": [10]}) == (False, None)

    def test_set_creates_intermediate_maps(self):
        item = {}
        path("a", "b", "c").set(item, 7)
        assert item == {"a": {"b": {"c": 7}}}

    def test_remove_nested(self):
        item = {"m": {"x": 1, "y": 2}}
        path("m", "x").remove(item)
        assert item == {"m": {"y": 2}}

    def test_remove_missing_is_noop(self):
        item = {"a": 1}
        path("zzz", "x").remove(item)
        assert item == {"a": 1}

    def test_empty_path_rejected(self):
        with pytest.raises(ValidationError):
            path()


class TestConditions:
    def test_eq(self):
        assert Eq("a", 5).evaluate({"a": 5})
        assert not Eq("a", 5).evaluate({"a": 6})

    def test_eq_missing_attr_is_false(self):
        assert not Eq("a", 5).evaluate({})
        assert not Eq("a", 5).evaluate(None)

    def test_ne(self):
        assert Ne("a", 5).evaluate({"a": 6})
        assert not Ne("a", 5).evaluate({})

    def test_ordering_comparisons(self):
        item = {"n": 10}
        assert Lt("n", 11).evaluate(item)
        assert Le("n", 10).evaluate(item)
        assert Gt("n", 9).evaluate(item)
        assert Ge("n", 10).evaluate(item)
        assert not Lt("n", 10).evaluate(item)

    def test_string_ordering(self):
        assert Lt("s", "b").evaluate({"s": "a"})

    def test_mixed_type_comparison_rejected(self):
        with pytest.raises(ValidationError):
            Lt("s", 5).evaluate({"s": "a"})

    def test_between(self):
        assert Between("n", 5, 10).evaluate({"n": 7})
        assert Between("n", 5, 10).evaluate({"n": 5})
        assert not Between("n", 5, 10).evaluate({"n": 11})

    def test_in(self):
        assert In("x", [1, 2, 3]).evaluate({"x": 2})
        assert not In("x", [1, 2, 3]).evaluate({"x": 9})

    def test_begins_with(self):
        assert BeginsWith("s", "ab").evaluate({"s": "abc"})
        assert not BeginsWith("s", "zz").evaluate({"s": "abc"})

    def test_contains_on_list_set_string(self):
        assert Contains("l", 2).evaluate({"l": [1, 2]})
        assert Contains("s", "bc").evaluate({"s": "abc"})
        assert Contains("st", "x").evaluate({"st": {"x", "y"}})
        assert not Contains("n", 1).evaluate({"n": 42})

    def test_attr_exists_on_missing_item(self):
        assert not AttrExists("a").evaluate(None)
        assert AttrNotExists("a").evaluate(None)

    def test_attr_exists_nested(self):
        item = {"m": {"k": None}}
        assert AttrExists(path("m", "k")).evaluate(item)
        assert AttrNotExists(path("m", "z")).evaluate(item)

    def test_size_conditions(self):
        item = {"log": {"a": 1, "b": 2}}
        assert SizeLt("log", 3).evaluate(item)
        assert not SizeLt("log", 2).evaluate(item)
        assert SizeGe("log", 2).evaluate(item)

    def test_size_of_missing_attr_is_false(self):
        assert not SizeLt("log", 3).evaluate({})

    def test_size_of_scalar_is_false(self):
        assert not SizeLt("n", 3).evaluate({"n": 1})

    def test_and_or_not(self):
        item = {"a": 1, "b": 2}
        assert And(Eq("a", 1), Eq("b", 2)).evaluate(item)
        assert not And(Eq("a", 1), Eq("b", 99)).evaluate(item)
        assert Or(Eq("a", 99), Eq("b", 2)).evaluate(item)
        assert Not(Eq("a", 99)).evaluate(item)

    def test_operator_overloads(self):
        item = {"a": 1, "b": 2}
        assert (Eq("a", 1) & Eq("b", 2)).evaluate(item)
        assert (Eq("a", 9) | Eq("b", 2)).evaluate(item)
        assert (~Eq("a", 9)).evaluate(item)

    def test_beldi_write_condition_shape(self):
        """The exact condition shape used by the write wrapper (Fig. 6)."""
        log_key = "inst-1.3"
        cond = And(
            AttrNotExists(path("RecentWrites", log_key)),
            SizeLt("RecentWrites", 4),
            AttrNotExists(path("NextRow")),
        )
        fresh_row = {"RecentWrites": {}, "LogSize": 0}
        assert cond.evaluate(fresh_row)
        logged = {"RecentWrites": {log_key: True}}
        assert not cond.evaluate(logged)
        full = {"RecentWrites": {f"k{i}": True for i in range(4)}}
        assert not cond.evaluate(full)
        chained = {"RecentWrites": {}, "NextRow": "row-2"}
        assert not cond.evaluate(chained)


class TestUpdates:
    def test_set_constant(self):
        item = {"a": 1}
        apply_updates(item, [Set("a", 2), Set("b", "x")])
        assert item == {"a": 2, "b": "x"}

    def test_set_nested_creates_maps(self):
        item = {}
        apply_updates(item, [Set(path("m", "k"), True)])
        assert item == {"m": {"k": True}}

    def test_set_from_path_ref(self):
        item = {"a": 5}
        apply_updates(item, [Set("b", PathRef(path("a")))])
        assert item["b"] == 5

    def test_set_arithmetic(self):
        item = {"n": 10}
        apply_updates(item, [Set("n", Plus(PathRef(path("n")), Value(1)))])
        assert item["n"] == 11

    def test_if_not_exists(self):
        item = {}
        update = Set("n", Plus(IfNotExists(path("n"), Value(0)), Value(1)))
        apply_updates(item, [update])
        apply_updates(item, [update])
        assert item["n"] == 2

    def test_list_append(self):
        item = {"l": [1]}
        apply_updates(item, [
            Set("l", ListAppend(PathRef(path("l")), Value([2, 3])))])
        assert item["l"] == [1, 2, 3]

    def test_remove(self):
        item = {"a": 1, "b": 2}
        apply_updates(item, [Remove("a")])
        assert item == {"b": 2}

    def test_add_number_creates_attr(self):
        item = {}
        apply_updates(item, [Add("n", 5)])
        apply_updates(item, [Add("n", -2)])
        assert item["n"] == 3

    def test_add_set_union(self):
        item = {"s": {"a"}}
        apply_updates(item, [Add("s", {"b", "c"})])
        assert item["s"] == {"a", "b", "c"}

    def test_delete_set_difference(self):
        item = {"s": {"a", "b"}}
        apply_updates(item, [Delete("s", {"a"})])
        assert item["s"] == {"b"}

    def test_set_value_is_deep_copied(self):
        payload = {"inner": [1]}
        item = {}
        apply_updates(item, [Set("v", payload)])
        payload["inner"].append(2)
        assert item["v"] == {"inner": [1]}

    def test_add_to_non_number_rejected(self):
        with pytest.raises(ValidationError):
            apply_updates({"n": "str"}, [Add("n", 1)])


class TestProjection:
    def test_projects_top_level(self):
        proj = Projection.of("a", "c")
        assert proj.apply({"a": 1, "b": 2, "c": 3}) == {"a": 1, "c": 3}

    def test_projects_nested(self):
        proj = Projection.of(path("m", "x"))
        assert proj.apply({"m": {"x": 1, "y": 2}}) == {"m": {"x": 1}}

    def test_missing_paths_skipped(self):
        proj = Projection.of("a", "zzz")
        assert proj.apply({"a": 1}) == {"a": 1}

    def test_daal_traversal_projection(self):
        """The RowId+NextRow projection used to build DAAL skeletons."""
        row = {"RowId": "HEAD", "Key": "k", "Value": "big" * 100,
               "RecentWrites": {"a": True}, "NextRow": "r2"}
        skeleton = Projection.of("RowId", "NextRow").apply(row)
        assert skeleton == {"RowId": "HEAD", "NextRow": "r2"}
