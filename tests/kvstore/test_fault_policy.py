"""FaultPolicy scoping semantics, pinned directly on the policy + stores.

Covers the interactions the DST harness relies on: ``only_ops`` ×
``only_shards`` × ``leader_crash_probability``, and the one-draw-per-
batch contract for ``batch_get``/``batch_write`` (a provider throttles
the round trip, not each row).
"""

import pytest

from repro.kvstore import (
    KVStore,
    ReplicaGroup,
    ShardedStore,
    ThrottledError,
)
from repro.kvstore.faults import FaultPolicy
from repro.sim import LatencyModel, RandomSource


class CountingRand:
    """RandomSource proxy that counts draws (and forces their value)."""

    def __init__(self, value=0.99):
        self.value = value
        self.draws = 0

    def random(self):
        self.draws += 1
        return self.value

    def randint(self, lo, hi):
        return hi


def make_store(shard_id=None, faults=None, rand=None):
    s = KVStore(latency=LatencyModel(RandomSource(3, "lat")),
                rand=rand or RandomSource(3, "store"),
                shard_id=shard_id, faults=faults)
    s.create_table("data", hash_key="Key")
    return s


class TestScoping:
    def test_only_ops_gates_the_draw(self):
        policy = FaultPolicy.for_ops(["db.read"], throttle_probability=1.0)
        s = make_store(faults=policy)
        s.put("data", {"Key": "a", "V": 1})  # writes unaffected
        with pytest.raises(ThrottledError):
            s.get("data", "a")

    def test_only_shards_spares_siblings(self):
        policy = FaultPolicy.for_shards([0], throttle_probability=1.0)
        sick = make_store(shard_id=0, faults=policy)
        healthy = make_store(shard_id=1, faults=policy)
        with pytest.raises(ThrottledError):
            sick.get("data", "a")
        assert healthy.get("data", "a") is None

    def test_unsharded_node_ignores_shard_scoped_policy(self):
        policy = FaultPolicy.for_shards([0], throttle_probability=1.0)
        s = make_store(shard_id=None, faults=policy)
        assert s.get("data", "a") is None

    def test_ops_and_shards_compose_conjunctively(self):
        policy = FaultPolicy(throttle_probability=1.0,
                             only_ops=frozenset(["db.write"]),
                             only_shards=frozenset([1]))
        assert policy.applies_to("db.write", 1)
        assert not policy.applies_to("db.write", 0)
        assert not policy.applies_to("db.read", 1)
        s = make_store(shard_id=1, faults=policy)
        assert s.get("data", "a") is None  # wrong op
        with pytest.raises(ThrottledError):
            s.put("data", {"Key": "a", "V": 1})

    def test_no_draw_outside_scope(self):
        """Out-of-scope operations must not consume randomness — a
        scoped policy cannot perturb the sibling shards' streams."""
        policy = FaultPolicy.for_shards([0], throttle_probability=0.5,
                                        leader_crash_probability=0.5)
        rand = CountingRand()
        assert not policy.should_throttle(rand, "db.read", shard=1)
        assert not policy.should_crash_leader(rand, "db.read", shard=1)
        assert policy.latency_multiplier(rand, "db.read", shard=1) == 1.0
        assert rand.draws == 0
        policy.should_throttle(rand, "db.read", shard=0)
        assert rand.draws == 1

    def test_leader_crash_respects_op_and_shard_scope(self):
        policy = FaultPolicy(leader_crash_probability=1.0,
                             only_ops=frozenset(["db.write"]),
                             only_shards=frozenset([0]))
        rand = CountingRand(value=0.0)  # every in-scope draw fires
        assert policy.should_crash_leader(rand, "db.write", shard=0)
        assert not policy.should_crash_leader(rand, "db.write", shard=1)
        assert not policy.should_crash_leader(rand, "db.read", shard=0)

    def test_leader_crash_triggers_failover_only_in_scope(self):
        def build(policy):
            leader = KVStore(latency=LatencyModel(RandomSource(5, "l")),
                             rand=RandomSource(5, "s"), shard_id=0)
            follower = KVStore(latency=LatencyModel(RandomSource(5, "l2")),
                               rand=RandomSource(5, "s2"), shard_id=0)
            group = ReplicaGroup(leader, [follower],
                                 rand=RandomSource(5, "repl"),
                                 latency=LatencyModel(RandomSource(5, "rl")),
                                 faults=policy)
            group.ensure_table("data", hash_key="Key")
            return group

        in_scope = build(FaultPolicy(leader_crash_probability=1.0,
                                     only_ops=frozenset(["db.write"])))
        in_scope.put("data", {"Key": "a", "V": 1})
        assert in_scope.stats.failovers >= 1

        out_of_scope = build(FaultPolicy(leader_crash_probability=1.0,
                                         only_shards=frozenset([9])))
        out_of_scope.put("data", {"Key": "a", "V": 1})
        assert out_of_scope.stats.failovers == 0


class TestOneDrawPerBatch:
    def test_batch_get_draws_once(self):
        rand = CountingRand()  # 0.99: never throttles at p=0.5
        s = make_store(faults=FaultPolicy(throttle_probability=0.5),
                       rand=rand)
        s.batch_get("data", [f"k{i}" for i in range(25)])
        assert rand.draws == 1

    def test_batch_write_draws_once(self):
        rand = CountingRand()
        s = make_store(faults=FaultPolicy(throttle_probability=0.5),
                       rand=rand)
        s.batch_write("data", puts=[{"Key": f"k{i}", "V": i}
                                    for i in range(25)])
        assert rand.draws == 1

    def test_throttled_batch_serves_a_prefix(self):
        """One bad draw partially serves the batch DynamoDB-style: a
        prefix lands, the remainder comes back unprocessed — it does not
        throttle each row independently."""
        rand = CountingRand(value=0.0)  # the one draw throttles
        s = make_store(faults=FaultPolicy(throttle_probability=0.5),
                       rand=rand)
        result = s.batch_write("data", puts=[{"Key": f"k{i}", "V": i}
                                             for i in range(10)])
        served = 10 - len(result.unprocessed_puts)
        assert 0 < served < 10
        rand.value = 0.99  # stop throttling for the verification reads
        # served rows are a prefix, in order
        for i in range(served):
            assert s.get("data", f"k{i}")["V"] == i
        for i in range(served, 10):
            assert s.get("data", f"k{i}") is None

    def test_sharded_batch_draws_once_per_shard(self):
        """A sharded batch fans out into per-shard sub-batches; each
        *node* consults its policy once — per-shard fault domains."""
        rands = [CountingRand(), CountingRand()]
        nodes = [KVStore(latency=LatencyModel(RandomSource(3, f"lat{i}")),
                         rand=rands[i], shard_id=i,
                         faults=FaultPolicy(throttle_probability=0.5))
                 for i in range(2)]
        sharded = ShardedStore(nodes)
        sharded.ensure_table("data", hash_key="Key")
        keys = [f"k{i}" for i in range(32)]
        sharded.batch_get("data", keys)
        per_shard = [len([k for k in keys
                          if sharded.shard_for("data", k) == i])
                     for i in range(2)]
        assert all(n > 0 for n in per_shard)  # both shards hit
        assert [r.draws for r in rands] == [1, 1]
