"""FaultTimeline semantics: scheduled outages, bursts, gray, partitions.

The timeline is the *scheduled* half of the fault model (the policy is
the probabilistic half): windows pinned to exact virtual times, scoped
like policies (ops / shards / replica roles), consulted on the store hot
path only when non-empty. Everything here runs on direct stores with a
``NullTimeSource`` clock advanced by hand — no kernel needed.
"""

import pytest

from repro.kvstore import (
    FaultTimeline,
    FaultWindow,
    KVStore,
    ReplicaGroup,
    ThrottledError,
    UnavailableError,
)
from repro.sim import LatencyModel, RandomSource


def make_store(shard_id=None, latency_scale=0.0, bare=False):
    s = KVStore(latency=LatencyModel(RandomSource(7, "lat"),
                                     scale=latency_scale),
                rand=RandomSource(7, "store"), shard_id=shard_id)
    if not bare:
        s.create_table("data", hash_key="Key")
    return s


class TestWindowSemantics:
    def test_active_is_half_open(self):
        w = FaultWindow("outage", 100.0, 200.0)
        assert not w.active(99.9)
        assert w.active(100.0)
        assert w.active(199.9)
        assert not w.active(200.0)

    def test_scoping_ops_and_shards(self):
        tl = FaultTimeline().outage(0, 10, shards=[1], ops=["db.write"])
        assert tl.outage_active(5.0, "db.write", 1)
        assert not tl.outage_active(5.0, "db.read", 1)
        assert not tl.outage_active(5.0, "db.write", 0)
        assert not tl.outage_active(15.0, "db.write", 1)

    def test_scalar_scopes_normalize(self):
        tl = FaultTimeline().outage(0, 10, shards=0, ops="db.read")
        assert tl.outage_active(0.0, "db.read", 0)
        assert not tl.outage_active(0.0, "db.read", 1)

    def test_role_scoping_spares_other_role_only(self):
        tl = FaultTimeline().outage(0, 10, role="leader")
        assert tl.outage_active(5.0, "db.read", 0, "leader")
        assert not tl.outage_active(5.0, "db.read", 0, "follower")
        # A node with no role (unreplicated store) is its own leader.
        assert tl.outage_active(5.0, "db.read", 0, None)

    def test_gray_multipliers_compound(self):
        tl = (FaultTimeline().gray(0, 100, multiplier=3.0)
              .gray(50, 100, multiplier=2.0))
        assert tl.latency_multiplier(10.0, "db.read") == 3.0
        assert tl.latency_multiplier(60.0, "db.read") == 6.0
        assert tl.latency_multiplier(100.0, "db.read") == 1.0

    def test_gray_open_ended(self):
        tl = FaultTimeline().gray(10, multiplier=4.0)
        assert tl.latency_multiplier(1e12, "db.read") == 4.0

    def test_burst_rate_is_max_of_active(self):
        tl = (FaultTimeline().error_burst(0, 100, rate=0.3)
              .error_burst(0, 50, rate=0.9))
        assert tl.burst_rate(10.0, "db.read") == 0.9
        assert tl.burst_rate(70.0, "db.read") == 0.3

    def test_partition_heal_time(self):
        tl = (FaultTimeline().partition(0, 100, shards=[0])
              .partition(50, 300, shards=[0]))
        assert tl.partition_heal_time(60.0, 0) == 300.0
        assert tl.partition_heal_time(60.0, 1) is None
        assert tl.partition_heal_time(301.0, 0) is None

    def test_describe_round_trips_json(self):
        import json
        tl = (FaultTimeline().outage(1, 2, shards=[0])
              .gray(3, multiplier=9.0).error_burst(4, 5, rate=0.5))
        desc = tl.describe()
        assert len(desc) == 3
        json.dumps(desc)  # JSON-ready (inf encoded as a string)
        assert desc[0]["kind"] == "outage"

    def test_empty_timeline_is_falsy(self):
        assert not FaultTimeline()
        assert FaultTimeline().outage(0, 1)


class TestStoreWiring:
    def test_outage_raises_before_any_effect(self):
        s = make_store()
        s.timeline = FaultTimeline().outage(0, 100, ops=["db.write"])
        with pytest.raises(UnavailableError):
            s.put("data", {"Key": "a", "V": 1})
        assert s.get("data", "a") is None  # nothing landed

    def test_outage_heals_on_schedule(self):
        s = make_store()
        s.timeline = FaultTimeline().outage(0, 100)
        with pytest.raises(UnavailableError):
            s.get("data", "a")
        s.time.sleep(150.0)
        assert s.get("data", "a") is None  # served, just empty

    def test_outage_scoped_to_other_shard_is_invisible(self):
        s = make_store(shard_id=2)
        s.timeline = FaultTimeline().outage(0, 100, shards=[0])
        s.put("data", {"Key": "a", "V": 1})
        assert s.get("data", "a")["V"] == 1

    def test_batch_ops_respect_outage(self):
        s = make_store()
        s.timeline = FaultTimeline().outage(0, 100)
        with pytest.raises(UnavailableError):
            s.batch_get("data", ["a", "b"])
        with pytest.raises(UnavailableError):
            s.batch_write("data", puts=[{"Key": "a", "V": 1}])

    def test_error_burst_throttles_at_full_rate(self):
        s = make_store()
        s.timeline = FaultTimeline().error_burst(0, 100, rate=1.0)
        with pytest.raises(ThrottledError):
            s.get("data", "a")
        s.time.sleep(100.0)
        assert s.get("data", "a") is None

    def test_gray_window_multiplies_latency(self):
        healthy = make_store(latency_scale=1.0)
        healthy.put("data", {"Key": "a", "V": 1})
        t0 = healthy.time.now()
        healthy.get("data", "a")
        base = healthy.time.now() - t0

        gray = make_store(latency_scale=1.0)
        gray.timeline = FaultTimeline().gray(0, None, multiplier=10.0)
        gray.put("data", {"Key": "a", "V": 1})
        t0 = gray.time.now()
        gray.get("data", "a")
        slowed = gray.time.now() - t0
        # Same seeded latency draw sequence, 10x the service time.
        assert slowed == pytest.approx(base * 10.0)

    def test_empty_timeline_is_bit_identical(self):
        plain = make_store(latency_scale=1.0)
        timed = make_store(latency_scale=1.0)
        timed.timeline = FaultTimeline()
        for s in (plain, timed):
            s.put("data", {"Key": "a", "V": 1})
            s.get("data", "a")
        assert plain.time.now() == timed.time.now()
        assert (plain.metering.snapshot() == timed.metering.snapshot())


class TestPartitions:
    def make_group(self):
        leader = make_store(shard_id=0, bare=True)
        followers = [make_store(shard_id=0, bare=True)]
        group = ReplicaGroup(leader, followers,
                             rand=RandomSource(9, "repl"),
                             latency=LatencyModel(RandomSource(9, "rl")))
        group.ensure_table("data", hash_key="Key")
        return group

    def test_partition_stalls_shipping_until_heal(self):
        group = self.make_group()
        group.timeline = FaultTimeline().partition(0, 500, shards=[0])
        group.put("data", {"Key": "a", "V": 1})
        # Drain well past normal ship delay but before the heal: the
        # follower must still be blind to the write.
        group.leader.time.sleep(200.0)
        for node in group.nodes:
            node.time.sleep(200.0)
        assert group.get("data", "a", consistency="eventual") is None
        lag = group.replication_lag()
        assert all(v >= 1 for v in lag.values())
        # Past the heal the stalled records become visible.
        group.leader.time.sleep(400.0)
        for node in group.nodes:
            node.time.sleep(400.0)
        assert group.get("data", "a",
                         consistency="eventual")["V"] == 1
        assert all(v == 0 for v in group.replication_lag().values())

    def test_leader_role_outage_spares_followers(self):
        group = self.make_group()
        group.put("data", {"Key": "a", "V": 1})
        for node in group.nodes:
            node.time.sleep(5_000.0)  # let the write ship
        tl = FaultTimeline().outage(5_000.0, 6_000.0, role="leader")
        for node in group.nodes:
            node.timeline = tl
        with pytest.raises(UnavailableError):
            group.get("data", "a")  # strong: leader-routed
        assert group.get("data", "a",
                         consistency="eventual")["V"] == 1

    def test_failover_converges_after_partition(self):
        group = self.make_group()
        group.timeline = FaultTimeline().partition(0, 500, shards=[0])
        group.put("data", {"Key": "a", "V": 1})
        group.put("data", {"Key": "b", "V": 2})
        # Fail the leader mid-partition: promotion replays the pending
        # (stalled) suffix, so no acknowledged write is lost.
        group.fail_leader()
        assert group.get("data", "a")["V"] == 1
        assert group.get("data", "b")["V"] == 2
