"""Merged metering views: per-node books vs the facade rollups.

The observability snapshot (``repro.obs``), the bench JSON reports and
the shard dashboards all read metering through two merged views —
``ShardedStore.metering`` (sum of per-node books) and
``ReplicaGroup.metering`` (leader + followers). These tests pin the
accounting identities those views rely on:

- facade totals equal the sum of the per-shard books, op by op;
- eventual-read counters survive the merge (per-op ``eventual_count``
  and the ``per_table_eventual`` audit counter alike);
- a batched write bills the same write units as the equivalent
  sequential writes — only the request ``count`` differs.
"""

import pytest

from repro.kvstore import KVStore, ReplicaGroup, ShardedStore
from repro.kvstore.store import NullTimeSource
from repro.sim import LatencyModel, RandomSource


def make_sharded(n=4):
    nodes = [KVStore(rand=RandomSource(i, "node"), shard_id=i)
             for i in range(n)]
    store = ShardedStore(nodes)
    store.create_table("data", hash_key="Key")
    return store


def make_group(n_replicas=3, seed=7, create=True):
    clock = NullTimeSource()
    nodes = [KVStore(time_source=clock, rand=RandomSource(seed + i, "n"),
                     shard_id=0)
             for i in range(n_replicas)]
    group = ReplicaGroup(
        nodes[0], nodes[1:], rand=RandomSource(seed, "repl"),
        latency=LatencyModel(RandomSource(seed, "repl-lat")))
    if create:
        group.create_table("data", hash_key="Key")
    return group, clock


def merged_equals_sum(facade, nodes):
    """Assert the facade's merged book is exactly the per-node sum."""
    merged = facade.metering
    ops = set(merged.ops)
    assert ops == {op for node in nodes for op in node.metering.ops}
    for op in ops:
        rec = merged.ops[op]
        for field in ("count", "items", "bytes_read", "bytes_written",
                      "eventual_count"):
            assert getattr(rec, field) == sum(
                getattr(node.metering.ops.get(op), field, 0)
                for node in nodes if op in node.metering.ops), (op, field)
        for field in ("read_units", "write_units"):
            assert getattr(rec, field) == pytest.approx(sum(
                getattr(node.metering.ops[op], field)
                for node in nodes if op in node.metering.ops)), (op, field)


class TestShardedMergedView:
    def test_facade_totals_are_per_shard_sums(self):
        store = make_sharded(4)
        for i in range(40):
            store.put("data", {"Key": f"k{i}", "V": "x" * (i * 40)})
        for i in range(0, 40, 3):
            store.get("data", f"k{i}")
        store.query("data", "k0")
        merged_equals_sum(store, store.nodes)
        # Every shard took traffic, so the identity is not vacuous.
        assert all(node.metering.op_count > 0 for node in store.nodes)
        assert store.metering.op_count == sum(
            node.metering.op_count for node in store.nodes)
        assert store.metering.dollar_cost() == pytest.approx(sum(
            node.metering.dollar_cost() for node in store.nodes))

    def test_totals_rollup_matches_merged_ops(self):
        store = make_sharded(2)
        for i in range(10):
            store.put("data", {"Key": f"k{i}", "V": i})
            store.get("data", f"k{i}")
        totals = store.metering.totals()
        assert totals["requests"] == store.metering.op_count == 20
        assert totals["dollars"] == pytest.approx(
            store.metering.dollar_cost(), abs=1e-12)
        assert totals["eventual_reads"] == 0

    def test_eventual_counters_survive_the_merge(self):
        store = make_sharded(4)
        keys = [f"k{i}" for i in range(20)]
        for key in keys:
            store.put("data", {"Key": key, "V": 1})
        for key in keys:
            store.get("data", key, consistency="eventual")
        for key in keys[:5]:
            store.get("data", key)  # strong
        merged = store.metering
        assert merged.ops["read"].eventual_count == 20
        assert merged.ops["read"].count == 25
        assert merged.per_table_eventual["data"] == 20
        assert merged.per_table["data"] > 20
        # Eventual reads bill half a unit: 20 half + 5 full.
        assert merged.ops["read"].read_units == pytest.approx(15.0)
        merged_equals_sum(store, store.nodes)


class TestReplicaGroupMergedView:
    def test_group_view_is_leader_plus_followers(self):
        group, clock = make_group(3)
        for i in range(10):
            group.put("data", {"Key": f"k{i}", "V": i})
        clock.sleep(300.0)  # past every clamped ship delay
        for i in range(10):
            group.get("data", f"k{i}", consistency="eventual")
        nodes = [group.leader] + list(group.followers)
        merged_equals_sum(group, nodes)
        # Writes stay on the leader's book; follower books only ever
        # see the eventually consistent reads routed to them.
        assert group.leader.metering.total("write_units") > 0
        for follower in group.followers:
            assert follower.metering.total("write_units") == 0
        follower_reads = sum(f.metering.ops["read"].eventual_count
                             for f in group.followers
                             if "read" in f.metering.ops)
        assert follower_reads == 10
        assert group.metering.ops["read"].eventual_count == 10
        assert group.metering.per_table_eventual["data"] == 10

    def test_sharded_over_groups_merges_recursively(self):
        """ShardedStore of ReplicaGroups: the top-level facade still sums
        to the leaves — the exact path the observability per-shard
        snapshot reads."""
        groups, clocks = [], []
        for shard in range(2):
            group, clock = make_group(2, seed=11 + shard, create=False)
            groups.append(group)
            clocks.append(clock)
        store = ShardedStore(groups)
        store.create_table("data", hash_key="Key")
        for i in range(20):
            store.put("data", {"Key": f"k{i}", "V": i})
        for clock in clocks:
            clock.sleep(300.0)
        for i in range(20):
            store.get("data", f"k{i}", consistency="eventual")
        leaves = [node for group in groups
                  for node in [group.leader] + list(group.followers)]
        merged_equals_sum(store, leaves)
        assert store.metering.ops["read"].eventual_count == 20


class TestBatchWriteUnitParity:
    def test_batched_bills_like_sequential_except_request_count(self):
        sizes = [10, 900, 1500, 5000]  # spans the 1 KB unit boundary
        sequential = KVStore()
        sequential.create_table("data", hash_key="Key")
        for i, size in enumerate(sizes):
            sequential.put("data", {"Key": f"k{i}", "V": "x" * size})
        batched = KVStore()
        batched.create_table("data", hash_key="Key")
        batched.batch_write(
            "data", puts=[{"Key": f"k{i}", "V": "x" * size}
                          for i, size in enumerate(sizes)])
        seq_rec = sequential.metering.ops["write"]
        bat_rec = batched.metering.ops["batch_write"]
        # Identical bill per item...
        assert bat_rec.write_units == pytest.approx(seq_rec.write_units)
        assert bat_rec.bytes_written == seq_rec.bytes_written
        assert bat_rec.items == seq_rec.items == len(sizes)
        # ...but one round trip instead of four.
        assert bat_rec.count == 1
        assert seq_rec.count == len(sizes)

    def test_parity_holds_through_the_sharded_merge(self):
        """Same parity when the writes fan out across shards and the
        numbers are read back through the merged facade view."""
        rows = [{"Key": f"k{i}", "V": "x" * (200 + 700 * i)}
                for i in range(12)]
        sequential = make_sharded(3)
        for row in rows:
            sequential.put("data", dict(row))
        batched = make_sharded(3)
        batched.batch_write("data", puts=[dict(row) for row in rows])
        seq = sequential.metering.ops["write"]
        bat = batched.metering.ops["batch_write"]
        assert bat.write_units == pytest.approx(seq.write_units)
        assert bat.bytes_written == seq.bytes_written
        assert bat.items == seq.items == len(rows)
        # One batched round trip per shard the rows land on.
        shards = {sequential.shard_for("data", row["Key"])
                  for row in rows}
        assert bat.count == len(shards) < seq.count
