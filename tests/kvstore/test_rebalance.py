"""Live chain migration: moves, recovery, latching, detector trigger."""

import pytest

from repro.kvstore import (
    ChainMigrator,
    ElasticityController,
    KVStore,
    KernelTimeSource,
    ReplicaGroup,
    ReplicatedStore,
    ShardedStore,
    placement_residue,
    recover_stale_migrations,
)
from repro.kvstore.rebalance import MIGRATIONS_TABLE
from repro.sim import LatencyModel, RandomSource, SimKernel


def make_store(n=3):
    store = ShardedStore([KVStore(rand=RandomSource(i, "node"),
                                  shard_id=i) for i in range(n)])
    store.create_table("data", hash_key="Key", range_key="RowId")
    return store


def seed_chain(store, key, rows=("HEAD", "r1", "r2")):
    for row_id in rows:
        store.put("data", {"Key": key, "RowId": row_id, "V": row_id,
                           "RecentWrites": {"w": True},
                           "LockOwner": {"Id": "i-1", "Ts": 1.0}})
    return store.shard_for("data", key)


class TestMigrate:
    def test_moves_whole_chain_and_installs_forward(self):
        store = make_store()
        source = seed_chain(store, "item-1")
        target = (source + 1) % 3
        moved_keys = []
        migrator = ChainMigrator(
            store, on_moved=lambda t, k: moved_keys.append((t, k)))
        assert migrator.migrate([("data", "item-1", target)]) == 1
        assert store.shard_for("data", "item-1") == target
        # Every row — embedded write log and lock marker included —
        # lives on the target and nothing stayed behind.
        assert store.nodes[target].item_count("data") == 3
        assert store.nodes[source].item_count("data") == 0
        row = store.get("data", ("item-1", "r1"))
        assert row["RecentWrites"] == {"w": True}
        assert row["LockOwner"]["Id"] == "i-1"
        assert placement_residue(store) == []
        assert moved_keys == [("data", "item-1")]
        record = store.get(MIGRATIONS_TABLE,
                           store._route_token("data", "item-1"))
        assert record["Phase"] == "done"
        assert migrator.stats.rows_moved == 3

    def test_move_to_current_owner_is_a_noop(self):
        store = make_store()
        owner = seed_chain(store, "item-2")
        migrator = ChainMigrator(store)
        assert migrator.migrate([("data", "item-2", owner)]) == 0
        assert store.get(MIGRATIONS_TABLE,
                         store._route_token("data", "item-2")) is None

    def test_latched_token_is_skipped(self):
        store = make_store()
        source = seed_chain(store, "item-3")
        migrator = ChainMigrator(store)
        token = store._route_token("data", "item-3")
        store._latched.add(token)
        try:
            assert migrator.migrate(
                [("data", "item-3", (source + 1) % 3)]) == 0
            assert migrator.stats.skipped == 1
        finally:
            store._latched.discard(token)

    def test_second_move_reuses_the_record(self):
        store = make_store()
        source = seed_chain(store, "item-4")
        migrator = ChainMigrator(store)
        first, second = (source + 1) % 3, (source + 2) % 3
        migrator.migrate([("data", "item-4", first)])
        migrator.migrate([("data", "item-4", second)])
        assert store.shard_for("data", "item-4") == second
        assert placement_residue(store) == []
        record = store.get(MIGRATIONS_TABLE,
                           store._route_token("data", "item-4"))
        assert (record["Phase"], record["Target"]) == ("done", second)

    def test_duplicate_tokens_in_one_batch_move_once(self):
        """Two moves of the same token in one batch must not fight over
        the migration record: the first wins, the duplicate is skipped,
        and no rows land on a shard routing doesn't point at."""
        store = make_store()
        source = seed_chain(store, "item-dup")
        migrator = ChainMigrator(store)
        first, second = (source + 1) % 3, (source + 2) % 3
        assert migrator.migrate([("data", "item-dup", first),
                                 ("data", "item-dup", second)]) == 1
        assert migrator.stats.skipped == 1
        assert store.shard_for("data", "item-dup") == first
        assert placement_residue(store) == []
        record = store.get(MIGRATIONS_TABLE,
                           store._route_token("data", "item-dup"))
        assert (record["Phase"], record["Target"]) == ("done", first)

    def test_migration_is_metered_separately(self):
        store = make_store()
        source = seed_chain(store, "item-5")
        migrator = ChainMigrator(store)
        migrator.migrate([("data", "item-5", (source + 1) % 3)])
        book = migrator.stats.metering
        assert book.ops["migrate_read"].items == 3
        assert book.ops["migrate_write"].items == 3
        assert book.ops["migrate_delete"].items == 3
        assert migrator.stats.dollars() > 0


class TestRecovery:
    def _crashed_copy(self, store):
        """Forge the state a crash right after the copy leaves behind:
        record in 'copy', full target copy, source still authoritative."""
        source = seed_chain(store, "item-r")
        target = (source + 1) % 3
        migrator = ChainMigrator(store)
        token = store._route_token("data", "item-r")
        store.put(MIGRATIONS_TABLE,
                  {"Token": token, "Table": "data", "Key": "item-r",
                   "Source": source, "Target": target, "Phase": "copy",
                   "StartedAt": 0.0})
        for row in store.nodes[source].query("data", "item-r").items:
            store.nodes[target].put("data", row)
        # A real crashed migrate() bumps the epoch before latching —
        # forge that too, or the epoch gate rightly skips the scan.
        store._migration_epoch = getattr(store, "_migration_epoch",
                                         0) + 1
        return migrator, token, source, target

    def test_copy_phase_rolls_back(self):
        store = make_store()
        migrator, token, source, target = self._crashed_copy(store)
        assert placement_residue(store) != []
        assert recover_stale_migrations(store, migrator) == 1
        assert migrator.stats.rolled_back == 1
        # Source stayed authoritative; the partial copy is gone, and so
        # is the record (the source was the pure hash placement).
        assert store.shard_for("data", "item-r") == source
        assert store.nodes[target].item_count("data") == 0
        assert store.get(MIGRATIONS_TABLE, token) is None
        assert placement_residue(store) == []

    def test_committed_phase_rolls_forward(self):
        store = make_store()
        source = seed_chain(store, "item-f")
        target = (source + 1) % 3
        migrator = ChainMigrator(store)
        token = store._route_token("data", "item-f")
        # Crash after commit: record committed, both sides hold rows,
        # in-memory forward lost with the worker.
        store.put(MIGRATIONS_TABLE,
                  {"Token": token, "Table": "data", "Key": "item-f",
                   "Source": source, "Target": target,
                   "Phase": "committed", "StartedAt": 0.0})
        for row in store.nodes[source].query("data", "item-f").items:
            store.nodes[target].put("data", row)
        store._migration_epoch = getattr(store, "_migration_epoch",
                                         0) + 1
        assert recover_stale_migrations(store, migrator) == 1
        assert migrator.stats.rolled_forward == 1
        assert store.shard_for("data", "item-f") == target
        assert store.nodes[source].item_count("data") == 0
        assert store.get(MIGRATIONS_TABLE, token)["Phase"] == "done"
        assert placement_residue(store) == []

    def test_latched_record_left_alone(self):
        store = make_store()
        migrator, token, source, target = self._crashed_copy(store)
        store._latched.add(token)
        try:
            assert recover_stale_migrations(store, migrator) == 0
            assert store.get(MIGRATIONS_TABLE, token)["Phase"] == "copy"
        finally:
            store._latched.discard(token)
        assert recover_stale_migrations(store, migrator) == 1

    def test_idle_store_never_scans(self):
        """An elastic store that never migrated anything must not pay
        the record scan at all — GC on an idle elastic runtime stays
        bit-for-bit the non-elastic timeline."""
        store = make_store()
        ChainMigrator(store)  # arms elasticity, creates the meta table
        assert recover_stale_migrations(store) == 0
        assert "scan" not in store.metering.ops

    def test_recovery_scan_is_epoch_gated(self):
        store = make_store()
        source = seed_chain(store, "item-e")
        migrator = ChainMigrator(store)
        migrator.migrate([("data", "item-e", (source + 1) % 3)])
        scans_before = store.metering.ops.get("scan")
        scans_before = scans_before.count if scans_before else 0
        assert recover_stale_migrations(store, migrator) == 0
        first = store.metering.ops["scan"].count
        assert first > scans_before  # the sweep scanned the records
        # No migration activity since the sweep: the scan is skipped.
        assert recover_stale_migrations(store, migrator) == 0
        assert store.metering.ops["scan"].count == first


class TestReplicatedMigration:
    def _replicated_store(self):
        groups = []
        for i in range(2):
            leader = KVStore(rand=RandomSource(i, "leader"), shard_id=i)
            followers = [KVStore(rand=RandomSource(10 * i + j, "f"),
                                 shard_id=i) for j in range(2)]
            groups.append(ReplicaGroup(
                leader, followers, rand=RandomSource(i, "grp"),
                lag_scale=0.0))
        store = ReplicatedStore(groups)
        store.create_table("data", hash_key="Key", range_key="RowId")
        return store

    def test_group_migrates_as_a_unit(self):
        store = self._replicated_store()
        for row_id in ("HEAD", "r1"):
            store.put("data", {"Key": "item-g", "RowId": row_id})
        source = store.shard_for("data", "item-g")
        target = 1 - source
        migrator = ChainMigrator(store)
        assert migrator.migrate([("data", "item-g", target)]) == 1
        assert store.shard_for("data", "item-g") == target
        # The copy reached the target group's followers through the
        # ordinary replication log, and the source's followers saw the
        # delete tombstones — every replica agrees on placement.
        for node in store.groups[target].nodes:
            assert node.item_count("data") == 2
        for node in store.groups[source].nodes:
            assert node.item_count("data") == 0
        assert placement_residue(store) == []


class TestConcurrencySafety:
    def _kernel_store(self, kernel, n=2):
        nodes = [KVStore(time_source=KernelTimeSource(kernel),
                         latency=LatencyModel(RandomSource(i, "lat")),
                         rand=RandomSource(i, "store"), shard_id=i)
                 for i in range(n)]
        store = ShardedStore(nodes)
        store.create_table("data", hash_key="Key", range_key="RowId")
        return store

    def test_concurrent_write_lands_after_the_move(self):
        """An inline write issued while the chain is mid-migration must
        wait out the latch and land on the *target* — the lost-update
        scenario the latch exists for."""
        kernel = SimKernel(seed=1)
        store = self._kernel_store(kernel)
        store.put("data", {"Key": "item-c", "RowId": "HEAD", "V": 0})
        source = store.shard_for("data", "item-c")
        target = 1 - source
        migrator = ChainMigrator(store)

        def migrate():
            migrator.migrate([("data", "item-c", target)])

        def write():
            # Spawned second (strictly after the migration latched).
            store.put("data", {"Key": "item-c", "RowId": "HEAD", "V": 7})

        kernel.spawn(migrate)
        kernel.spawn(write, delay=0.1)
        kernel.run()
        kernel.shutdown()
        assert store.shard_for("data", "item-c") == target
        assert store.get("data", ("item-c", "HEAD"))["V"] == 7
        assert store.nodes[source].item_count("data") == 0
        assert placement_residue(store) == []

    def test_in_flight_write_is_drained_before_the_copy(self):
        """A write that already routed to the source (sleeping in its
        latency) when the migration starts must be included in the
        copy — the migrator drains in-flight operations first."""
        kernel = SimKernel(seed=2)
        store = self._kernel_store(kernel)
        store.put("data", {"Key": "item-d", "RowId": "HEAD", "V": 0})
        source = store.shard_for("data", "item-d")
        target = 1 - source
        migrator = ChainMigrator(store)

        def write():
            store.put("data", {"Key": "item-d", "RowId": "HEAD", "V": 9})

        def migrate():
            migrator.migrate([("data", "item-d", target)])

        kernel.spawn(write)
        kernel.spawn(migrate, delay=0.1)
        kernel.run()
        kernel.shutdown()
        assert store.get("data", ("item-d", "HEAD"))["V"] == 9
        assert placement_residue(store) == []


class TestController:
    def test_detector_triggers_and_rebalances(self):
        store = make_store(2)
        migrator = ChainMigrator(store)
        controller = ElasticityController(
            store, migrator, check_every=1, min_window=10,
            load_ratio=1.2, max_moves=4, tolerance=0.0)
        # Ten hot chains, all landing on one shard by construction.
        hot = [f"k{i}" for i in range(200)
               if store.shard_for("data", f"k{i}") == 0][:10]
        for key in hot:
            store.put("data", {"Key": key, "RowId": "HEAD"})
        # Drive enough routed traffic through the facade to trip it.
        for _ in range(3):
            for key in hot:
                store.get("data", (key, "HEAD"))
            controller.tick()
        assert controller.rebalances >= 1
        assert migrator.stats.migrations > 0
        loads = [0, 0]
        for key in hot:
            loads[store.shard_for("data", key)] += 1
        assert loads[1] > 0, "nothing moved off the hot shard"
        assert placement_residue(store) == []

    def test_queue_backlog_triggers_when_ops_lean_but_dont_trip(self):
        """Few-but-expensive ops: the op window leans toward one shard
        without crossing the ratio, but its queue backlog screams — the
        second signal must trip the rebalance."""
        store = ShardedStore([KVStore(rand=RandomSource(i, "node"),
                                      shard_id=i, capacity=1)
                              for i in range(2)])
        store.create_table("data", hash_key="Key", range_key="RowId")
        migrator = ChainMigrator(store)
        controller = ElasticityController(
            store, migrator, check_every=1, min_window=10,
            load_ratio=1.3, tolerance=0.0)
        hot = [f"k{i}" for i in range(200)
               if store.shard_for("data", f"k{i}") == 0][:6]
        for key in hot:
            store.put("data", {"Key": key, "RowId": "HEAD"})
            store.get("data", (key, "HEAD"))
        # Window leans to shard 0 (ratio ~1.2: above halfway, below the
        # 1.3 trigger) while shard 0's queue is far behind.
        controller._baseline = [0, 0]
        store.shard_ops = [60, 40]
        store.nodes[0].queue.delay(0.0, 5000.0)
        controller.tick()
        assert controller.rebalances == 1
        assert migrator.stats.migrations > 0
        assert placement_residue(store) == []

    def test_below_threshold_touches_nothing(self):
        store = make_store(2)
        migrator = ChainMigrator(store)
        controller = ElasticityController(
            store, migrator, check_every=1, min_window=5,
            load_ratio=10.0)
        store.put("data", {"Key": "a", "RowId": "HEAD"})
        for _ in range(50):
            store.get("data", ("a", "HEAD"))
            controller.tick()
        assert controller.checks > 0
        assert controller.rebalances == 0
        assert migrator.stats.migrations == 0

    def test_protocol_tables_are_not_migratable(self):
        assert not ElasticityController._migratable("env.intent")
        assert not ElasticityController._migratable("env.readlog")
        assert not ElasticityController._migratable("env.invokelog")
        assert not ElasticityController._migratable("env.locksets")
        assert not ElasticityController._migratable(MIGRATIONS_TABLE)
        assert ElasticityController._migratable("env.profiles")
        assert ElasticityController._migratable("env.profiles.shadow")


class TestHeatTracking:
    def test_heat_and_shard_ops_follow_routed_traffic(self):
        store = make_store(2)
        store.enable_elasticity()
        store.put("data", {"Key": "h1", "RowId": "HEAD"})
        for _ in range(4):
            store.get("data", ("h1", "HEAD"))
        assert store.heat[("data", "h1")] == 5  # put + 4 gets
        assert sum(store.shard_ops) == 5

    def test_disabled_store_keeps_no_books(self):
        store = make_store(2)
        store.put("data", {"Key": "h2", "RowId": "HEAD"})
        assert store.heat is None
        assert store.shard_ops == []
