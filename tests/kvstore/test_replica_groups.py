"""``ReplicaGroup``/``ReplicatedStore``: lag, routing, pricing, failover."""

import pytest

from repro.core import BeldiConfig, BeldiRuntime
from repro.kvstore import (
    KVStore,
    ReadConsistency,
    ReplicaGroup,
    ReplicatedStore,
    Set,
    ShardedStore,
    TransactPut,
    TransactUpdate,
)
from repro.kvstore.faults import FaultPolicy
from repro.kvstore.metering import normalize_consistency
from repro.kvstore.store import NullTimeSource
from repro.sim import LatencyModel, RandomSource

EVENTUAL = ReadConsistency.EVENTUAL
SHIP_LAG = 250.0  # >= any clamped ship delay (DEFAULT_MAX_LAG_MS)


def make_group(n_replicas=3, lag_scale=1.0, faults=None, max_lag=250.0,
               seed=7):
    """One replica group with a shared manual clock and real lag."""
    clock = NullTimeSource()
    nodes = [KVStore(time_source=clock, rand=RandomSource(seed + i, "n"),
                     shard_id=0)
             for i in range(n_replicas)]
    group = ReplicaGroup(
        nodes[0], nodes[1:], rand=RandomSource(seed, "repl"),
        latency=LatencyModel(RandomSource(seed, "repl-lat")),
        faults=faults, max_lag=max_lag, lag_scale=lag_scale)
    group.create_table("data", hash_key="Key")
    return group, clock


class TestConsistencyModes:
    def test_normalize_accepts_enum_and_strings(self):
        assert normalize_consistency(None) is None
        assert normalize_consistency("strong") is None
        assert normalize_consistency("eventual") == "eventual"
        assert normalize_consistency(ReadConsistency.STRONG) is None
        assert normalize_consistency(ReadConsistency.EVENTUAL) == "eventual"
        with pytest.raises(ValueError):
            normalize_consistency("linearizable")

    def test_eventual_read_prices_half_even_unreplicated(self):
        store = KVStore()
        store.create_table("data", hash_key="Key")
        store.put("data", {"Key": "a", "V": 1})
        strong_before = store.metering.total("read_units")
        store.get("data", "a")
        strong_units = store.metering.total("read_units") - strong_before
        eventual_before = store.metering.total("read_units")
        store.get("data", "a", consistency="eventual")
        eventual_units = (store.metering.total("read_units")
                          - eventual_before)
        assert eventual_units == pytest.approx(0.5 * strong_units)
        assert store.metering.per_table_eventual["data"] == 1


class TestLagModel:
    def test_follower_read_is_stale_within_bound_then_converges(self):
        group, clock = make_group()
        group.put("data", {"Key": "a", "V": "new"})
        # Immediately after the write the follower may not have it yet.
        assert group.get("data", "a") == {"Key": "a", "V": "new"}
        stale = group.get("data", "a", consistency=EVENTUAL)
        assert stale is None  # lagging: bounded-stale view
        clock.sleep(SHIP_LAG + 1)
        caught_up = group.get("data", "a", consistency=EVENTUAL)
        assert caught_up == {"Key": "a", "V": "new"}
        assert all(lag == 0 for lag in group.replication_lag().values())

    def test_lag_zero_follower_is_always_current(self):
        group, _clock = make_group(lag_scale=0.0)
        for i in range(10):
            group.put("data", {"Key": f"k{i}", "V": i})
            assert group.get("data", f"k{i}",
                             consistency=EVENTUAL)["V"] == i

    def test_application_preserves_write_order(self):
        group, clock = make_group()
        for version in range(5):
            group.update("data", ("a",), [Set("V", version)])
            clock.sleep(3.0)
        clock.sleep(SHIP_LAG)
        assert group.get("data", "a", consistency=EVENTUAL)["V"] == 4

    def test_delete_ships_a_tombstone(self):
        group, clock = make_group()
        group.put("data", {"Key": "a", "V": 1})
        clock.sleep(SHIP_LAG + 1)
        assert group.get("data", "a", consistency=EVENTUAL) is not None
        group.delete("data", "a")
        clock.sleep(SHIP_LAG + 1)
        assert group.get("data", "a", consistency=EVENTUAL) is None

    def test_eventual_reads_have_item_affinity(self):
        """The same item's eventual reads always land on one follower,
        so multi-op reads (chain traversals) observe a monotonic state."""
        group, clock = make_group(n_replicas=4)
        group.put("data", {"Key": "a", "V": 1})
        clock.sleep(SHIP_LAG + 1)
        for _ in range(8):
            group.get("data", "a", consistency=EVENTUAL)
        served = [n for n in group.followers
                  if n.metering.ops.get("read")
                  and n.metering.ops["read"].count]
        assert len(served) == 1

    def test_eventual_batch_get_respects_item_affinity(self):
        """A batched eventual read routes each key to its affine
        follower — the same one its point reads use — so an item never
        goes backwards in time between a batch and a point read."""
        group, clock = make_group(n_replicas=4)
        keys = [f"k{i}" for i in range(12)]
        for key in keys:
            group.put("data", {"Key": key, "V": key})
        clock.sleep(SHIP_LAG + 1)
        batch = group.batch_get("data", keys, consistency=EVENTUAL)
        assert [row["V"] for row in batch] == keys
        # Point-read each key; per-node read counts must not change
        # distribution shape: every key's point read hits the follower
        # that served it in the batch, so the set of followers with
        # reads stays the same.
        served_after_batch = {id(n) for n in group.followers
                              if n.metering.ops.get("batch_get")}
        for key in keys:
            group.get("data", key, consistency=EVENTUAL)
        served_after_points = {id(n) for n in group.followers
                               if n.metering.ops.get("read")}
        assert served_after_points == served_after_batch

    def test_transact_write_ships_all_rows(self):
        group, clock = make_group()
        group.put("data", {"Key": "b", "V": 0})
        clock.sleep(SHIP_LAG + 1)
        group.transact_write([
            TransactPut("data", {"Key": "a", "V": "A"}),
            TransactUpdate("data", ("b",), [Set("V", "B")]),
        ])
        clock.sleep(SHIP_LAG + 1)
        assert group.get("data", "a", consistency=EVENTUAL)["V"] == "A"
        assert group.get("data", "b", consistency=EVENTUAL)["V"] == "B"

    def test_direct_view_writes_replicate_immediately(self):
        group, _clock = make_group()
        view = group.table("data")
        view.put({"Key": "seeded", "V": 9})
        for node in group.followers:
            assert node._tables["data"].get(("seeded",))["V"] == 9


class TestMetering:
    def test_group_books_merge_leader_and_followers(self):
        group, clock = make_group()
        group.put("data", {"Key": "a", "V": 1})
        clock.sleep(SHIP_LAG + 1)
        group.get("data", "a")
        group.get("data", "a", consistency=EVENTUAL)
        merged = group.metering
        assert merged.ops["write"].count == 1
        assert merged.ops["read"].count == 2
        assert merged.ops["read"].eventual_count == 1
        assert merged.per_table_eventual["data"] == 1

    def test_log_application_is_unmetered(self):
        """Internal replication traffic costs nothing — DynamoDB does
        not bill for it either."""
        group, clock = make_group()
        for i in range(20):
            group.put("data", {"Key": f"k{i}", "V": i})
        clock.sleep(SHIP_LAG + 1)
        group.get("data", "k0", consistency=EVENTUAL)  # forces a drain
        for node in group.followers:
            assert "write" not in node.metering.ops
            assert node.metering.total("write_units") == 0


class TestFailover:
    def test_promotes_and_loses_no_acknowledged_write(self):
        group, _clock = make_group()
        for i in range(12):
            group.put("data", {"Key": f"k{i}", "V": i})
        # Followers are still lagging; fail the leader now.
        assert any(lag > 0 for lag in group.replication_lag().values())
        promoted = group.fail_leader()
        assert promoted in (1, 2)
        assert group.stats.failovers == 1
        assert group.stats.replayed > 0
        # The promoted state serves every acknowledged write.
        for i in range(12):
            assert group.get("data", f"k{i}")["V"] == i

    def test_promotes_most_caught_up_follower(self):
        group, clock = make_group(n_replicas=3)
        group.put("data", {"Key": "a", "V": 1})
        clock.sleep(SHIP_LAG + 1)
        # Both followers caught up; now write again and drain only one
        # by making its shipped record visible via a direct read.
        group.put("data", {"Key": "b", "V": 2})
        lags = group.replication_lag()
        best = min(lags, key=lambda index: (lags[index], index))
        promoted = group.fail_leader()
        drained = {index: lag for index, lag in lags.items() if lag == 0}
        if drained:
            assert promoted in drained or lags[promoted] == min(
                lags.values())
        assert group.get("data", "b")["V"] == 2
        assert best is not None  # exercised the selection path

    def test_old_leader_rejoins_and_next_failover_works(self):
        group, clock = make_group()
        group.put("data", {"Key": "a", "V": 1})
        first = group.fail_leader()
        group.put("data", {"Key": "a", "V": 2})
        second = group.fail_leader()
        assert first != second or group.stats.failovers == 2
        assert group.get("data", "a")["V"] == 2
        clock.sleep(SHIP_LAG + 1)
        assert group.get("data", "a", consistency=EVENTUAL)["V"] == 2

    def test_fault_policy_injects_failover_on_writes(self):
        crashy = FaultPolicy(leader_crash_probability=1.0)
        group, _clock = make_group(faults=crashy)
        group.put("data", {"Key": "a", "V": 1})
        assert group.stats.failovers >= 1
        assert group.get("data", "a")["V"] == 1

    def test_failover_pays_latency(self):
        clock = NullTimeSource()
        nodes = [KVStore(time_source=clock, shard_id=0) for _ in range(3)]
        group = ReplicaGroup(
            nodes[0], nodes[1:], rand=RandomSource(1, "repl"),
            latency=LatencyModel(RandomSource(1, "repl-lat"), scale=1.0))
        group.create_table("data", hash_key="Key")
        group.put("data", {"Key": "a", "V": 1})
        before = clock.now()
        group.fail_leader()
        assert clock.now() > before  # repl.failover latency was paid

    def test_single_replica_group_cannot_fail_over(self):
        clock = NullTimeSource()
        group = ReplicaGroup(KVStore(time_source=clock), [],
                             rand=RandomSource(2, "repl"))
        group.create_table("data", hash_key="Key")
        with pytest.raises(ValueError):
            group.fail_leader()
        # Eventual reads degrade gracefully to the leader at half price.
        group.put("data", {"Key": "a", "V": 1})
        assert group.get("data", "a", consistency=EVENTUAL)["V"] == 1
        assert group.metering.per_table_eventual["data"] == 1


class TestReplicatedStoreFacade:
    def make_store(self, shards=2, replicas=3, lag_scale=1.0):
        clock = NullTimeSource()
        groups = []
        for shard in range(shards):
            nodes = [KVStore(time_source=clock,
                             rand=RandomSource(shard * 10 + i, "n"),
                             shard_id=shard)
                     for i in range(replicas)]
            groups.append(ReplicaGroup(
                nodes[0], nodes[1:],
                rand=RandomSource(shard, "repl"),
                latency=LatencyModel(RandomSource(shard, "repl-lat")),
                lag_scale=lag_scale))
        store = ReplicatedStore(groups)
        store.create_table("data", hash_key="Key")
        return store, clock

    def test_facade_routes_and_reads_back(self):
        store, _clock = self.make_store()
        for i in range(30):
            store.put("data", {"Key": f"k{i}", "V": i})
        for i in range(30):
            assert store.get("data", f"k{i}")["V"] == i
        assert store.item_count("data") == 30
        assert sum(store.items_per_shard("data")) == 30

    def test_eventual_scan_and_query_index_fan_out(self):
        store, clock = self.make_store()
        store.table("data").add_index("by_flag", "Flag")
        for i in range(20):
            store.put("data", {"Key": f"k{i}", "V": i,
                               "Flag": "on" if i % 2 else "off"})
        clock.sleep(SHIP_LAG + 1)
        result = store.scan("data", consistency=EVENTUAL)
        assert {item["Key"] for item in result.items} == {
            f"k{i}" for i in range(20)}
        hits = store.query_index("data", "by_flag", "on",
                                 consistency=EVENTUAL)
        assert sorted(h["V"] for h in hits) == list(range(1, 20, 2))

    def test_cross_shard_transaction_replicates_everywhere(self):
        store, clock = self.make_store()
        keys, shards_seen = [], set()
        for i in range(100):
            shard = store.shard_for("data", f"t{i}")
            if shard not in shards_seen:
                shards_seen.add(shard)
                keys.append(f"t{i}")
            if len(keys) == 2:
                break
        store.transact_write([
            TransactPut("data", {"Key": keys[0], "V": "A"}),
            TransactPut("data", {"Key": keys[1], "V": "B"}),
        ])
        clock.sleep(SHIP_LAG + 1)
        assert store.get("data", keys[0],
                         consistency=EVENTUAL)["V"] == "A"
        assert store.get("data", keys[1],
                         consistency=EVENTUAL)["V"] == "B"

    def test_replication_stats_aggregate(self):
        store, _clock = self.make_store()
        for i in range(10):
            store.put("data", {"Key": f"k{i}", "V": i})
        assert store.replication_stats.shipped == 10
        assert set(store.replication_lag()) == {0, 1}

    def test_seeding_through_view_reaches_followers(self):
        store, _clock = self.make_store()
        view = store.table("data")
        view.put({"Key": "seeded", "V": 42})
        group = store.nodes[store.shard_for("data", "seeded")]
        for node in group.followers:
            assert node._tables["data"].get(("seeded",))["V"] == 42


class TestRuntimeIntegration:
    def test_replicas_1_is_plain_sharded_store(self):
        runtime = BeldiRuntime(seed=5, shards=2, replicas=1)
        assert type(runtime.store) is ShardedStore
        runtime.kernel.shutdown()

    def test_replicas_1_matches_sharded_run_bit_for_bit(self):
        """`replicas=1` must reproduce the PR-2 ShardedStore behavior
        exactly: same virtual clock, same metering books."""
        def run(**kwargs):
            runtime = BeldiRuntime(seed=5, latency_scale=1.0, shards=2,
                                   config=BeldiConfig(gc_t=1e12), **kwargs)

            def profile(ctx, payload):
                record = ctx.read("profiles", payload["u"]) or {"n": 0}
                record = {"n": record["n"] + 1}
                ctx.write("profiles", payload["u"], record)
                return record

            ssf = runtime.register_ssf("profile", profile,
                                       tables=["profiles"])
            for i in range(4):
                ssf.env.seed("profiles", f"u{i}", {"n": 0})
            results = [runtime.run_workflow("profile", {"u": f"u{i % 4}"})
                       for i in range(8)]
            now = runtime.kernel.now
            snapshot = runtime.store.metering.snapshot()
            runtime.kernel.shutdown()
            return results, now, snapshot

        baseline = run()
        explicit = run(replicas=1)
        assert explicit == baseline

    def test_replicated_runtime_strong_matches_unreplicated(self):
        """With replication on but reads strong, the leader's rand and
        latency streams are untouched — the same workload produces the
        same clock and the same books."""
        def run(**kwargs):
            runtime = BeldiRuntime(seed=6, latency_scale=1.0, shards=2,
                                   config=BeldiConfig(gc_t=1e12), **kwargs)

            def profile(ctx, payload):
                record = ctx.read("profiles", payload["u"]) or {"n": 0}
                ctx.write("profiles", payload["u"],
                          {"n": record["n"] + 1})
                return record

            ssf = runtime.register_ssf("profile", profile,
                                       tables=["profiles"])
            for i in range(4):
                ssf.env.seed("profiles", f"u{i}", {"n": 0})
            for i in range(8):
                runtime.run_workflow("profile", {"u": f"u{i % 4}"})
            now = runtime.kernel.now
            snapshot = runtime.store.metering.snapshot()
            runtime.kernel.shutdown()
            return now, snapshot

        assert run() == run(replicas=3, read_consistency="strong")

    def test_read_consistency_validated(self):
        with pytest.raises(ValueError):
            BeldiRuntime(read_consistency="bogus")
        with pytest.raises(ValueError):
            BeldiRuntime(replicas=0)

    def test_read_eventual_replays_deterministically(self):
        """A logged eventual read returns the logged value on replay
        even though the underlying store moved on."""
        from repro.core import ops as core_ops

        runtime = BeldiRuntime(seed=9, shards=1, replicas=2,
                               read_consistency="eventual",
                               replication_lag_scale=0.0)

        captured = {}

        def reader(ctx, payload):
            captured["ctx"] = ctx
            return ctx.read_eventual("items", "a")

        ssf = runtime.register_ssf("reader", reader, tables=["items"])
        ssf.env.seed("items", "a", {"v": "first"})
        assert runtime.run_workflow("reader", {}) == {"v": "first"}
        # Replay the logged step by hand: the store value changes, the
        # logged read does not.
        ctx = captured["ctx"]
        ssf.env.seed("items", "a", {"v": "second"})
        ctx._step = 0
        replayed = core_ops.read_only_op(
            ctx, ssf.env.data_table("items"), "a",
            consistency="eventual")
        assert replayed == {"v": "first"}
        runtime.kernel.shutdown()
