"""``ShardedStore``: routing, fan-out, faults, cross-shard transactions."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kvstore import (
    AttrNotExists,
    Eq,
    HashRing,
    KVStore,
    KernelTimeSource,
    Set,
    ShardedStore,
    TableNotFound,
    ThrottledError,
    TransactPut,
    TransactUpdate,
    TransactionCanceled,
    batch_get_all,
)
from repro.kvstore.faults import FaultPolicy
from repro.sim import LatencyModel, RandomSource, SimKernel


def make_store(n=4, faults_by_shard=None, capacity=None):
    nodes = [
        KVStore(rand=RandomSource(i, "node"), shard_id=i,
                faults=(faults_by_shard or {}).get(i),
                capacity=capacity)
        for i in range(n)]
    return ShardedStore(nodes)


@pytest.fixture
def store():
    s = make_store(4)
    s.create_table("data", hash_key="Key")
    s.create_table("chains", hash_key="Key", range_key="RowId")
    return s


class TestRouting:
    def test_stable_and_deterministic(self, store):
        other = make_store(4)
        other.create_table("data", hash_key="Key")
        for i in range(50):
            key = f"k{i}"
            assert store.shard_for("data", key) == other.shard_for(
                "data", key)

    def test_reasonable_balance(self, store):
        owners = {store.shard_for("data", f"key-{i:03d}")
                  for i in range(200)}
        assert owners == {0, 1, 2, 3}, "200 keys must touch every shard"

    def test_chain_rows_colocate(self, store):
        """All rows of one item's chain (same hash key) share a shard —
        the property row-scoped atomic conditional writes depend on."""
        for row in ("HEAD", "r1", "r2"):
            store.put("chains", {"Key": "item-7", "RowId": row})
        counts = store.items_per_shard("chains")
        assert sorted(counts) == [0, 0, 0, 3]

    def test_facade_reads_what_it_writes(self, store):
        for i in range(40):
            store.put("data", {"Key": f"k{i}", "V": i})
        for i in range(40):
            assert store.get("data", f"k{i}")["V"] == i
        assert store.item_count("data") == 40

    def test_ring_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ShardedStore([KVStore(), KVStore()], ring=HashRing(3))

    def test_unknown_table_rejected(self, store):
        with pytest.raises(TableNotFound):
            store.get("ghost", "a")
        with pytest.raises(TableNotFound):
            store.scan("ghost")


FAST = dict(deadline=None, max_examples=25,
            suppress_health_check=[HealthCheck.too_slow])

_TOKENS = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=0, max_size=40)


class TestHashRingProperties:
    """Property tests for the consistent-hash ring itself."""

    @given(token=_TOKENS,
           n_shards=st.integers(min_value=1, max_value=12),
           replicas=st.integers(min_value=1, max_value=128))
    @settings(**FAST)
    def test_routing_is_stable_across_instances(self, token, n_shards,
                                                replicas):
        """Same (shards, vnodes) parameters => same owner for any token,
        in any process, from any fresh ring instance."""
        first = HashRing(n_shards, replicas=replicas)
        second = HashRing(n_shards, replicas=replicas)
        owner = first.shard_of(token)
        assert 0 <= owner < n_shards
        assert second.shard_of(token) == owner

    @given(n_shards=st.integers(min_value=2, max_value=8),
           replicas=st.sampled_from([16, 64, 128]),
           salt=st.integers(min_value=0, max_value=1_000))
    @settings(**FAST)
    def test_key_spread_stays_balanced(self, n_shards, replicas, salt):
        """With enough keys, no shard is starved and the max/min shard
        load ratio stays bounded — the vnode smoothing guarantee."""
        ring = HashRing(n_shards, replicas=replicas)
        keys_per_shard = n_shards * 200
        loads = [0] * n_shards
        for i in range(keys_per_shard):
            loads[ring.shard_of(f"data|key-{salt}-{i:05d}")] += 1
        assert min(loads) > 0, "a shard received no keys at all"
        ratio = max(loads) / min(loads)
        # 16 vnodes is lumpy, 64+ smooth; both must stay in-band.
        bound = 4.0 if replicas < 64 else 3.0
        assert ratio <= bound, (
            f"shard imbalance {ratio:.2f} > {bound} at "
            f"{n_shards} shards / {replicas} vnodes: {loads}")

    @given(n_shards=st.integers(min_value=1, max_value=8),
           replicas=st.sampled_from([32, 64]))
    @settings(**FAST)
    def test_adding_a_shard_only_moves_keys_to_it(self, n_shards,
                                                  replicas):
        """Consistent hashing's defining property: growing the ring
        from N to N+1 shards never reshuffles a key between two
        surviving shards — every moved key lands on the new one."""
        before = HashRing(n_shards, replicas=replicas)
        after = HashRing(n_shards + 1, replicas=replicas)
        moved = 0
        total = 500
        for i in range(total):
            token = f"data|key-{i:05d}"
            old_owner = before.shard_of(token)
            new_owner = after.shard_of(token)
            if new_owner != old_owner:
                moved += 1
                assert new_owner == n_shards, (
                    f"key {token} moved {old_owner}->{new_owner}, "
                    f"not to the new shard {n_shards}")
        # And the moved fraction is in the ~1/(N+1) ballpark, not a
        # wholesale reshuffle.
        assert moved <= total * 2.5 / (n_shards + 1)

    def test_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            HashRing(0)

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            HashRing(2, weights=[0.0, 0.0])
        with pytest.raises(ValueError):
            HashRing(2, weights=[1.0, -0.5])
        with pytest.raises(ValueError):
            HashRing(2, weights=[1.0])


class TestWeightedRingProperties:
    """Weighted vnodes: re-weighting is local; forwards override hash."""

    @given(n_shards=st.integers(min_value=2, max_value=6),
           replicas=st.sampled_from([32, 64]),
           target=st.integers(min_value=0, max_value=5),
           new_weight=st.sampled_from([0.0, 0.25, 0.5, 2.0, 4.0]))
    @settings(**FAST)
    def test_reweighting_only_moves_keys_to_or_from_that_node(
            self, n_shards, replicas, target, new_weight):
        """Changing one shard's weight never reshuffles a key between
        two *other* shards: every moved key has the re-weighted shard
        as its source (weight down) or destination (weight up)."""
        target %= n_shards
        before = HashRing(n_shards, replicas=replicas)
        after = HashRing(n_shards, replicas=replicas)
        after.set_weight(target, new_weight)
        moved_to = moved_from = 0
        for i in range(400):
            token = f"data|key-{i:05d}"
            old_owner = before.shard_of(token)
            new_owner = after.shard_of(token)
            if new_owner == old_owner:
                continue
            assert target in (old_owner, new_owner), (
                f"{token} moved {old_owner}->{new_owner} although only "
                f"shard {target} was re-weighted")
            if new_owner == target:
                moved_to += 1
            else:
                moved_from += 1
        if new_weight > 1.0:
            assert moved_from == 0
        if new_weight < 1.0:
            assert moved_to == 0

    @given(n_shards=st.integers(min_value=2, max_value=6),
           weights=st.lists(st.floats(min_value=0.25, max_value=4.0),
                            min_size=2, max_size=6))
    @settings(**FAST)
    def test_weighted_share_tracks_weight(self, n_shards, weights):
        """A shard's key share grows with its weight: the max-weighted
        shard never ends up starved below an equal-weight share of a
        large key population."""
        weights = (weights * n_shards)[:n_shards]
        ring = HashRing(n_shards, replicas=64, weights=weights)
        loads = [0] * n_shards
        for i in range(n_shards * 300):
            loads[ring.shard_of(f"data|key-{i:05d}")] += 1
        heaviest = max(range(n_shards), key=lambda s: weights[s])
        if weights[heaviest] >= 2 * min(weights):
            assert loads[heaviest] >= (n_shards * 300) / (2 * n_shards)

    def test_forward_overrides_and_clears(self):
        ring = HashRing(4)
        token = "data|'k1'"
        home = ring.shard_of(token)
        other = (home + 1) % 4
        ring.set_forward(token, other)
        assert ring.shard_of(token) == other
        assert ring.hash_shard_of(token) == home
        assert ring.forwards == {token: other}
        # Forwarding back to the hash owner removes the overlay entry.
        ring.set_forward(token, home)
        assert ring.forwards == {}
        assert ring.shard_of(token) == home
        ring.set_forward(token, other)
        ring.clear_forward(token)
        assert ring.shard_of(token) == home

    def test_forward_rejects_unknown_shard(self):
        ring = HashRing(2)
        with pytest.raises(ValueError):
            ring.set_forward("data|'x'", 5)


def _apply_plan(ring: HashRing, plan) -> None:
    for token, _source, target in plan:
        ring.set_forward(token, target)


class TestPlanRebalance:
    """plan_rebalance: minimal, convergent, balanced-is-empty."""

    @given(n_shards=st.integers(min_value=2, max_value=5),
           seed=st.integers(min_value=0, max_value=10_000))
    @settings(**FAST)
    def test_balanced_load_plans_nothing(self, n_shards, seed):
        """A load already equal across shards is inside any tolerance —
        the plan must be empty (the 'second plan' half of convergence,
        stated directly). Built by bucketing unit-load tokens per owner
        and truncating every bucket to the same size."""
        ring = HashRing(n_shards)
        buckets = {shard: [] for shard in range(n_shards)}
        for i in range(n_shards * 200):
            token = f"data|key-{seed}-{i:04d}"
            buckets[ring.shard_of(token)].append(token)
        per_shard = min(len(bucket) for bucket in buckets.values())
        assert per_shard > 0
        loads = {token: 1.0 for bucket in buckets.values()
                 for token in bucket[:per_shard]}
        assert ring.plan_rebalance(loads, tolerance=0.2) == []
        assert ring.plan_rebalance(loads, tolerance=0.0) == []

    @given(n_shards=st.integers(min_value=2, max_value=5),
           token_loads=st.lists(st.integers(min_value=1, max_value=40),
                                min_size=12, max_size=60),
           seed=st.integers(min_value=0, max_value=500))
    @settings(**FAST)
    def test_plan_converges_and_is_minimal(self, n_shards, token_loads,
                                           seed):
        """Applying the plan brings every move's effect to rest: the
        re-planned state is empty (convergence / idempotence), every
        move's source was over the tolerance bound at plan time, and
        no token moves twice."""
        ring = HashRing(n_shards)
        loads = {f"data|key-{seed}-{i:04d}": float(load)
                 for i, load in enumerate(token_loads)}
        mean = sum(loads.values()) / n_shards
        bound = mean * 1.2
        shard_load = [0.0] * n_shards
        for token, load in loads.items():
            shard_load[ring.shard_of(token)] += load
        plan = ring.plan_rebalance(loads, tolerance=0.2)
        # Minimality: only overloaded shards donate, nothing moves
        # twice, and every single move is productive at its time.
        assert len({token for token, *_ in plan}) == len(plan)
        donors = {source for _t, source, _r in plan}
        for donor in donors:
            assert shard_load[donor] > bound
        _apply_plan(ring, plan)
        assert ring.plan_rebalance(loads, tolerance=0.2) == []

    def test_plan_respects_max_moves(self):
        ring = HashRing(2)
        # Find tokens all owned by one shard so it is overloaded.
        hot = [f"data|key-{i:04d}" for i in range(400)
               if ring.shard_of(f"data|key-{i:04d}") == 0][:20]
        loads = {token: 5.0 for token in hot}
        plan = ring.plan_rebalance(loads, tolerance=0.0, max_moves=3)
        assert 0 < len(plan) <= 3

    def test_mega_token_is_not_shuffled_around(self):
        """A single token bigger than the donor/recipient gap cannot be
        moved productively — the plan must leave it alone rather than
        bounce the hotspot between shards."""
        ring = HashRing(2)
        token = "data|'whale'"
        plan = ring.plan_rebalance({token: 1000.0}, tolerance=0.0)
        assert plan == []

    def test_negative_load_rejected(self):
        ring = HashRing(2)
        with pytest.raises(ValueError):
            ring.plan_rebalance({"data|'a'": -1.0})


class TestTableViews:
    def test_tables_exist_on_every_node(self, store):
        for node in store.nodes:
            assert node.table_names() == ["chains", "data"]

    def test_add_index_fans_out(self, store):
        view = store.table("data")
        view.add_index("by_flag", "Flag")
        for node in store.nodes:
            assert "by_flag" in node.table("data")._indexes
        store.put("data", {"Key": "a", "Flag": "on"})
        store.put("data", {"Key": "b", "Flag": "on"})
        store.put("data", {"Key": "c"})
        hits = store.query_index("data", "by_flag", "on")
        assert sorted(item["Key"] for item in hits) == ["a", "b"]

    def test_direct_view_ops_route(self, store):
        view = store.table("data")
        view.put({"Key": "x", "V": 1})
        assert view.get("x")["V"] == 1
        view.update("x", [Set("V", 2)])
        assert store.get("data", "x")["V"] == 2
        assert view.delete("x")["V"] == 2
        assert store.get("data", "x") is None


class TestQueriesAndScans:
    def test_query_hits_one_shard(self, store):
        for row in ("HEAD", "r1"):
            store.put("chains", {"Key": "q-item", "RowId": row})
        result = store.query("chains", "q-item")
        assert [r["RowId"] for r in result.items] == ["HEAD", "r1"]
        # Exactly one node paid a query round trip.
        queried = [n for n in store.nodes
                   if "query" in n.metering.ops]
        assert len(queried) == 1

    def test_scan_merges_all_shards(self, store):
        keys = {f"k{i}" for i in range(30)}
        for key in keys:
            store.put("data", {"Key": key})
        result = store.scan("data")
        assert {item["Key"] for item in result.items} == keys
        assert result.last_evaluated_key is None

    def test_paged_scan_visits_everything_once(self, store):
        keys = {f"k{i}" for i in range(23)}
        for key in keys:
            store.put("data", {"Key": key})
        seen = []
        cursor = None
        for _ in range(40):
            page = store.scan("data", limit=4, exclusive_start=cursor)
            seen.extend(item["Key"] for item in page.items)
            cursor = page.last_evaluated_key
            if cursor is None:
                break
        assert sorted(seen) == sorted(keys)
        assert len(seen) == len(keys)

    def test_foreign_start_key_rejected(self, store):
        with pytest.raises(ValueError):
            store.scan("data", exclusive_start=("k1",))


class TestBatchGet:
    def test_fans_out_and_realigns(self, store):
        for i in range(12):
            store.put("data", {"Key": f"k{i}", "V": i})
        keys = [f"k{i}" for i in (7, 0, 99, 3, 11)]
        result = store.batch_get("data", keys)
        assert [r["V"] if r else None for r in result] == [7, 0, None, 3,
                                                           11]
        assert result.complete
        # One round trip per involved shard, not per key.
        trips = sum(n.metering.ops["batch_get"].count
                    for n in store.nodes if "batch_get" in n.metering.ops)
        shards_touched = len({store.shard_for("data", k) for k in keys})
        assert trips == shards_touched

    def test_one_sick_shard_yields_partial_results(self):
        sick = FaultPolicy.for_ops(["db.batch_read"],
                                   throttle_probability=1.0)
        store = make_store(4, faults_by_shard={1: sick})
        store.create_table("data", hash_key="Key")
        keys = [f"k{i}" for i in range(32)]
        for key in keys:
            store.put("data", {"Key": key})
        sick_keys = {k for k in keys if store.shard_for("data", k) == 1}
        assert sick_keys and len(sick_keys) < len(keys)
        result = store.batch_get("data", keys)
        # Healthy shards served fully; the sick shard's keys are the
        # unprocessed remainder (minus any partial prefix it served).
        assert set(result.unprocessed_keys) <= sick_keys
        for i, key in enumerate(keys):
            if key not in sick_keys:
                assert result[i] == {"Key": key}
        assert not result.complete

    def test_all_shards_sick_raises(self):
        sick = FaultPolicy.for_ops(["db.batch_read"],
                                   throttle_probability=1.0)
        store = make_store(2, faults_by_shard={0: sick, 1: sick})
        store.create_table("data", hash_key="Key")
        store.put("data", {"Key": "a"})
        # Single-key-per-shard batches cannot be partially served, so
        # eventually a draw rejects everything everywhere.
        with pytest.raises(ThrottledError):
            for _ in range(100):
                store.batch_get("data", ["a"])

    def test_batch_get_all_completes_through_sick_shard(self):
        sick = FaultPolicy.for_ops(["db.batch_read"],
                                   throttle_probability=1.0)
        store = make_store(4, faults_by_shard={1: sick})
        store.create_table("data", hash_key="Key")
        keys = [f"k{i}" for i in range(32)]
        for key in keys:
            store.put("data", {"Key": key})
        rows = batch_get_all(store, "data", keys)
        assert all(rows[i] == {"Key": key} for i, key in enumerate(keys))


class TestPerShardFaultDomains:
    def test_only_shards_scopes_point_reads(self):
        sick = FaultPolicy(only_ops=frozenset(["db.read"]),
                           only_shards=frozenset([2]),
                           throttle_probability=1.0)
        store = make_store(4,
                           faults_by_shard={i: sick for i in range(4)})
        store.create_table("data", hash_key="Key")
        keys = [f"k{i}" for i in range(32)]
        for key in keys:
            store.put("data", {"Key": key})
        for key in keys:
            if store.shard_for("data", key) == 2:
                with pytest.raises(ThrottledError):
                    store.get("data", key)
            else:
                assert store.get("data", key) == {"Key": key}

    def test_shard_scoped_policy_ignores_unsharded_store(self):
        plain = KVStore(faults=FaultPolicy.for_shards(
            [0], throttle_probability=1.0))
        plain.create_table("data", hash_key="Key")
        plain.put("data", {"Key": "a"})
        assert plain.get("data", "a") == {"Key": "a"}

    def test_per_shard_latency_spike(self):
        kernel = SimKernel(seed=3)
        spike = FaultPolicy.for_shards([0], spike_probability=1.0,
                                       spike_multiplier=50.0)
        nodes = [
            KVStore(time_source=KernelTimeSource(kernel),
                    latency=LatencyModel(RandomSource(i, "lat")),
                    rand=RandomSource(i, "store"), shard_id=i,
                    faults=spike)
            for i in range(2)]
        store = ShardedStore(nodes)
        store.create_table("data", hash_key="Key")
        durations = {}

        def probe(shard, key):
            start = kernel.now
            store.get("data", key)
            durations[shard] = kernel.now - start

        k0 = next(f"k{i}" for i in range(100)
                  if store.shard_for("data", f"k{i}") == 0)
        k1 = next(f"k{i}" for i in range(100)
                  if store.shard_for("data", f"k{i}") == 1)
        kernel.spawn(probe, 0, k0)
        kernel.run()
        kernel.spawn(probe, 1, k1)
        kernel.run()
        kernel.shutdown()
        assert durations[0] > 10 * durations[1]


class TestCrossShardTransactions:
    def _spread_keys(self, store, table, want=2):
        """Two keys guaranteed to live on different shards."""
        keys = [f"t{i}" for i in range(100)]
        by_shard = {}
        for key in keys:
            by_shard.setdefault(store.shard_for(table, key), key)
            if len(by_shard) >= want:
                break
        return list(by_shard.values())

    def test_single_shard_group_delegates(self, store):
        store.put("data", {"Key": "solo", "V": 0})
        store.transact_write([
            TransactUpdate("data", ("solo",), [Set("V", 1)]),
        ])
        assert store.get("data", "solo")["V"] == 1

    def test_cross_shard_commit_is_atomic(self, store):
        a, b = self._spread_keys(store, "data")
        store.transact_write([
            TransactPut("data", {"Key": a, "V": "A"},
                        condition=AttrNotExists("Key")),
            TransactPut("data", {"Key": b, "V": "B"},
                        condition=AttrNotExists("Key")),
        ])
        assert store.get("data", a)["V"] == "A"
        assert store.get("data", b)["V"] == "B"

    def test_cross_shard_condition_failure_applies_nothing(self, store):
        a, b = self._spread_keys(store, "data")
        store.put("data", {"Key": b, "V": "old"})
        with pytest.raises(TransactionCanceled):
            store.transact_write([
                TransactPut("data", {"Key": a, "V": "A"},
                            condition=AttrNotExists("Key")),
                TransactPut("data", {"Key": b, "V": "B"},
                            condition=AttrNotExists("Key")),
            ])
        assert store.get("data", a) is None, "partial transaction applied"
        assert store.get("data", b)["V"] == "old"

    def test_cross_shard_pays_two_rounds_per_shard(self):
        kernel = SimKernel(seed=9)
        nodes = [
            KVStore(time_source=KernelTimeSource(kernel),
                    latency=LatencyModel(RandomSource(i, "lat")),
                    rand=RandomSource(i, "store"), shard_id=i)
            for i in range(2)]
        store = ShardedStore(nodes)
        store.create_table("data", hash_key="Key")
        a, b = TestCrossShardTransactions()._spread_keys(store, "data")
        elapsed = {}

        def single():
            start = kernel.now
            store.transact_write([TransactPut("data", {"Key": a, "V": 1})])
            elapsed["single"] = kernel.now - start

        def cross():
            start = kernel.now
            store.transact_write([
                TransactPut("data", {"Key": a, "V": 2}),
                TransactPut("data", {"Key": b, "V": 2}),
            ])
            elapsed["cross"] = kernel.now - start

        kernel.spawn(single)
        kernel.run()
        kernel.spawn(cross)
        kernel.run()
        kernel.shutdown()
        # Two db.txn rounds on each of two shards vs one round on one.
        assert elapsed["cross"] > 2 * elapsed["single"]


class TestMergedStats:
    def test_metering_merges_nodes(self, store):
        for i in range(20):
            store.put("data", {"Key": f"k{i}", "V": i})
        merged = store.metering
        assert merged.ops["write"].count == 20
        per_node = sum(n.metering.ops.get("write").count
                       for n in store.nodes if "write" in n.metering.ops)
        assert per_node == 20
        assert merged.dollar_cost() > 0

    def test_storage_accounting_sums_shards(self, store):
        for i in range(10):
            store.put("data", {"Key": f"k{i}", "V": "x" * 50})
        assert store.storage_bytes("data") == sum(
            n.storage_bytes("data") for n in store.nodes)
        assert store.item_count("data") == 10
