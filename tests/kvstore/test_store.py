"""Unit tests for the KVStore facade: latency, metering, transactions."""

import pytest

from repro.kvstore import (
    AttrNotExists,
    ConditionFailed,
    Eq,
    KVStore,
    KernelTimeSource,
    Set,
    TableExists,
    TableNotFound,
    ThrottledError,
    TransactPut,
    TransactUpdate,
    TransactionCanceled,
)
from repro.kvstore.faults import FaultPolicy
from repro.sim import LatencyModel, RandomSource, SimKernel


@pytest.fixture
def store():
    s = KVStore()
    s.create_table("data", hash_key="Key")
    return s


class TestTableManagement:
    def test_create_and_use(self, store):
        store.put("data", {"Key": "a", "V": 1})
        assert store.get("data", "a")["V"] == 1

    def test_duplicate_create_rejected(self, store):
        with pytest.raises(TableExists):
            store.create_table("data", hash_key="Key")

    def test_ensure_table_idempotent(self, store):
        t1 = store.ensure_table("data", hash_key="Key")
        t2 = store.ensure_table("data", hash_key="Key")
        assert t1 is t2

    def test_unknown_table_rejected(self, store):
        with pytest.raises(TableNotFound):
            store.get("ghost", "a")

    def test_drop_table(self, store):
        store.drop_table("data")
        with pytest.raises(TableNotFound):
            store.get("data", "a")

    def test_table_names_sorted(self, store):
        store.create_table("alpha", hash_key="K")
        assert store.table_names() == ["alpha", "data"]


class TestMetering:
    def test_reads_and_writes_counted(self, store):
        store.put("data", {"Key": "a", "V": 1})
        store.get("data", "a")
        store.get("data", "a")
        snap = store.metering.snapshot()
        assert snap["write"]["count"] == 1
        assert snap["read"]["count"] == 2

    def test_bytes_metered(self, store):
        store.put("data", {"Key": "a", "Blob": "x" * 2048})
        assert store.metering.bytes_written >= 2048

    def test_dollar_cost_positive(self, store):
        store.put("data", {"Key": "a", "V": 1})
        store.get("data", "a")
        assert store.metering.dollar_cost() > 0

    def test_diff_isolates_window(self, store):
        store.put("data", {"Key": "a", "V": 1})
        baseline = store.metering.copy()
        store.get("data", "a")
        delta = store.metering.diff(baseline)
        assert "read" in delta and "write" not in delta


class TestTransactWrite:
    def test_cross_table_atomic_commit(self, store):
        store.create_table("log", hash_key="LogKey")
        store.transact_write([
            TransactUpdate("data", ("a",), [Set("V", 1)]),
            TransactPut("log", {"LogKey": "op1", "Done": True}),
        ])
        assert store.get("data", "a")["V"] == 1
        assert store.get("log", "op1")["Done"] is True

    def test_failing_condition_cancels_everything(self, store):
        store.create_table("log", hash_key="LogKey")
        store.put("log", {"LogKey": "op1"})
        with pytest.raises(TransactionCanceled):
            store.transact_write([
                TransactUpdate("data", ("a",), [Set("V", 1)]),
                TransactPut("log", {"LogKey": "op1"},
                            condition=AttrNotExists("LogKey")),
            ])
        assert store.get("data", "a") is None

    def test_empty_transaction_is_noop(self, store):
        store.transact_write([])

    def test_same_table_twice(self, store):
        store.transact_write([
            TransactUpdate("data", ("a",), [Set("V", 1)]),
            TransactUpdate("data", ("b",), [Set("V", 2)]),
        ])
        assert store.get("data", "b")["V"] == 2


class TestFaultInjection:
    def test_throttling_raises(self):
        s = KVStore(rand=RandomSource(1),
                    faults=FaultPolicy(throttle_probability=1.0))
        s.create_table("data", hash_key="Key")
        with pytest.raises(ThrottledError):
            s.get("data", "a")

    def test_no_faults_by_default(self, store):
        for _ in range(100):
            store.get("data", "a")


class TestVirtualLatency:
    def test_ops_consume_virtual_time_under_kernel(self):
        kernel = SimKernel(seed=3)
        rand = RandomSource(3)
        store = KVStore(time_source=KernelTimeSource(kernel),
                        latency=LatencyModel(rand.child("lat")),
                        rand=rand.child("store"))
        store.create_table("data", hash_key="Key")
        durations = []

        def body():
            start = kernel.now
            store.put("data", {"Key": "a", "V": 1})
            store.get("data", "a")
            durations.append(kernel.now - start)

        kernel.spawn(body)
        kernel.run()
        kernel.shutdown()
        assert durations and durations[0] > 0

    def test_scan_latency_scales_with_rows(self):
        kernel = SimKernel(seed=3)
        rand = RandomSource(3)
        spec = LatencyModel(rand.child("lat"))
        store = KVStore(time_source=KernelTimeSource(kernel),
                        latency=spec, rand=rand.child("store"))
        store.create_table("data", hash_key="Key")
        for i in range(500):
            store.table("data").put({"Key": f"k{i:04d}"})
        samples = {}

        def body():
            start = kernel.now
            store.scan("data", limit=1)
            samples["short"] = kernel.now - start
            start = kernel.now
            store.scan("data")
            samples["long"] = kernel.now - start

        kernel.spawn(body)
        kernel.run()
        kernel.shutdown()
        assert samples["long"] > samples["short"]

    def test_null_time_source_is_instant(self, store):
        store.get("data", "a")
        assert store.time.now() == 0.0


class TestTimeSourceAlignment:
    """``NullTimeSource`` and ``KernelTimeSource`` must agree on
    zero-duration sleeps: neither advances, so metering and timing are
    invariant to which source backs a zero-latency store."""

    def test_zero_duration_sleep_is_a_noop_in_both(self):
        from repro.kvstore import NullTimeSource
        null = NullTimeSource()
        null.sleep(0.0)
        null.sleep(-1.0)  # defensive: negative durations never advance
        assert null.now() == 0.0
        kernel = SimKernel(seed=0)
        kts = KernelTimeSource(kernel)
        kts.sleep(0.0)  # outside any process: must not blow up or move
        assert kts.now() == 0.0
        kernel.shutdown()

    def test_positive_sleep_still_advances_null_source(self):
        from repro.kvstore import NullTimeSource
        null = NullTimeSource()
        null.sleep(2.5)
        assert null.now() == 2.5

    def test_zero_latency_store_meters_identically_under_both(self):
        from repro.kvstore import NullTimeSource

        def drive(store):
            store.create_table("data", hash_key="Key")
            store.put("data", {"Key": "a", "V": 1})
            store.get("data", "a")
            store.batch_get("data", ["a", "b"])
            store.scan("data")
            return store.metering.snapshot(), store.time.now()

        null_store = KVStore(time_source=NullTimeSource())
        kernel = SimKernel(seed=0)
        kernel_store = KVStore(time_source=KernelTimeSource(kernel))
        null_metered, null_now = drive(null_store)
        kernel_metered = None

        def body():
            nonlocal kernel_metered
            kernel_metered = drive(kernel_store)

        kernel.spawn(body)
        kernel.run()
        kernel.shutdown()
        assert null_metered == kernel_metered[0]
        assert null_now == kernel_metered[1] == 0.0


class TestServiceCapacity:
    def test_bounded_parallelism_queues_in_virtual_time(self):
        """With 1 server, N concurrent readers serialize: total elapsed
        ~= sum of service times; with plenty of servers they overlap."""
        from repro.sim.latency import ServiceCapacity

        def makespan(servers):
            kernel = SimKernel(seed=5)
            rand = RandomSource(5)
            store = KVStore(time_source=KernelTimeSource(kernel),
                            latency=LatencyModel(rand.child("lat")),
                            rand=rand.child("store"),
                            capacity=servers)
            store.create_table("data", hash_key="Key")
            store.table("data").put({"Key": "a"})
            for _ in range(8):
                kernel.spawn(lambda: store.get("data", "a"))
            end = kernel.run()
            kernel.shutdown()
            return end

        serial = makespan(1)
        parallel = makespan(8)
        assert serial > 4 * parallel

    def test_rejects_nonpositive_capacity(self):
        from repro.sim.latency import ServiceCapacity
        with pytest.raises(ValueError):
            ServiceCapacity(0)

    def test_store_capacity_zero_rejected_not_unbounded(self):
        """capacity=0 must be an error, not silently 'no queue'."""
        with pytest.raises(ValueError):
            KVStore(capacity=0)


class TestConditionFailures:
    def test_condition_failed_propagates(self, store):
        store.put("data", {"Key": "a", "N": 1})
        with pytest.raises(ConditionFailed):
            store.update("data", "a", [Set("N", 2)], condition=Eq("N", 9))

    def test_storage_bytes_rollup(self, store):
        store.create_table("other", hash_key="K")
        store.put("data", {"Key": "a", "Blob": "x" * 100})
        store.put("other", {"K": "b", "Blob": "y" * 50})
        assert store.storage_bytes() >= 150
        assert store.storage_bytes("other") >= 50
        assert store.item_count("data") == 1
