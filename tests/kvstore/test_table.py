"""Unit tests for tables: atomic ops, queries, scans, indexes."""

import pytest

from repro.kvstore import (
    AttrNotExists,
    ConditionFailed,
    Eq,
    Gt,
    ItemTooLarge,
    KeySchema,
    Set,
    Table,
)
from repro.kvstore.errors import ValidationError
from repro.kvstore.expressions import Projection, path


@pytest.fixture
def simple():
    """A hash-key-only table."""
    return Table("data", KeySchema("Key"))


@pytest.fixture
def composite():
    """A hash+range table, like a linked DAAL table."""
    return Table("daal", KeySchema("Key", "RowId"))


class TestPutGet:
    def test_put_then_get(self, simple):
        simple.put({"Key": "a", "Value": 1})
        assert simple.get("a") == {"Key": "a", "Value": 1}

    def test_get_missing_returns_none(self, simple):
        assert simple.get("nope") is None

    def test_put_replaces_whole_item(self, simple):
        simple.put({"Key": "a", "Value": 1, "Extra": True})
        simple.put({"Key": "a", "Value": 2})
        assert simple.get("a") == {"Key": "a", "Value": 2}

    def test_get_returns_copy(self, simple):
        simple.put({"Key": "a", "List": [1]})
        fetched = simple.get("a")
        fetched["List"].append(2)
        assert simple.get("a")["List"] == [1]

    def test_put_stores_copy(self, simple):
        item = {"Key": "a", "List": [1]}
        simple.put(item)
        item["List"].append(2)
        assert simple.get("a")["List"] == [1]

    def test_composite_key_roundtrip(self, composite):
        composite.put({"Key": "k", "RowId": "HEAD", "Value": 0})
        composite.put({"Key": "k", "RowId": "r1", "Value": 1})
        assert composite.get(("k", "HEAD"))["Value"] == 0
        assert composite.get(("k", "r1"))["Value"] == 1

    def test_missing_hash_key_rejected(self, simple):
        with pytest.raises(ValidationError):
            simple.put({"Value": 1})

    def test_scalar_key_rejected_for_composite(self, composite):
        with pytest.raises(ValidationError):
            composite.get("k")


class TestConditionalOps:
    def test_conditional_put_insert_once(self, simple):
        cond = AttrNotExists("Key")
        simple.put({"Key": "a", "V": 1}, condition=cond)
        with pytest.raises(ConditionFailed):
            simple.put({"Key": "a", "V": 2}, condition=cond)
        assert simple.get("a")["V"] == 1

    def test_conditional_update(self, simple):
        simple.put({"Key": "a", "N": 5})
        simple.update("a", [Set("N", 6)], condition=Eq("N", 5))
        with pytest.raises(ConditionFailed):
            simple.update("a", [Set("N", 7)], condition=Eq("N", 5))
        assert simple.get("a")["N"] == 6

    def test_update_creates_missing_item(self, simple):
        simple.update("new", [Set("V", 1)])
        assert simple.get("new") == {"Key": "new", "V": 1}

    def test_update_condition_sees_missing_item(self, simple):
        simple.update("new", [Set("V", 1)],
                      condition=AttrNotExists("Key"))
        with pytest.raises(ConditionFailed):
            simple.update("new", [Set("V", 2)],
                          condition=AttrNotExists("Key"))

    def test_update_returns_new_item(self, simple):
        simple.put({"Key": "a", "N": 1})
        result = simple.update("a", [Set("N", 2)])
        assert result == {"Key": "a", "N": 2}

    def test_update_cannot_change_key(self, simple):
        simple.put({"Key": "a", "N": 1})
        with pytest.raises(ValidationError):
            simple.update("a", [Set("Key", "b")])

    def test_conditional_delete(self, simple):
        simple.put({"Key": "a", "N": 1})
        with pytest.raises(ConditionFailed):
            simple.delete("a", condition=Eq("N", 99))
        removed = simple.delete("a", condition=Eq("N", 1))
        assert removed["N"] == 1
        assert simple.get("a") is None

    def test_delete_missing_is_none(self, simple):
        assert simple.delete("ghost") is None

    def test_failed_condition_leaves_item_unchanged(self, simple):
        simple.put({"Key": "a", "N": 1})
        with pytest.raises(ConditionFailed):
            simple.update("a", [Set("N", 99)], condition=Eq("N", 0))
        assert simple.get("a")["N"] == 1


class TestSizeLimit:
    def test_oversized_put_rejected(self):
        table = Table("t", KeySchema("Key"), max_item_bytes=100)
        with pytest.raises(ItemTooLarge):
            table.put({"Key": "a", "Blob": "x" * 200})

    def test_oversized_update_rejected_and_rolled_back(self):
        table = Table("t", KeySchema("Key"), max_item_bytes=100)
        table.put({"Key": "a", "Blob": "small"})
        with pytest.raises(ItemTooLarge):
            table.update("a", [Set("Blob", "y" * 200)])
        assert table.get("a")["Blob"] == "small"

    def test_row_fills_up_like_olive_daal(self):
        """A single-row DAAL hits the item cap — the paper's motivation."""
        table = Table("t", KeySchema("Key"), max_item_bytes=2048)
        table.put({"Key": "a", "Log": {}})
        with pytest.raises(ItemTooLarge):
            for i in range(200):
                table.update("a", [Set(path("Log", f"entry-{i:04d}"),
                                       "v" * 16)])


class TestQuery:
    def test_query_orders_by_range_key(self, composite):
        for row_id in ["r3", "HEAD", "r1"]:
            composite.put({"Key": "k", "RowId": row_id})
        result = composite.query("k")
        assert [r["RowId"] for r in result.items] == ["HEAD", "r1", "r3"]

    def test_query_other_partition_empty(self, composite):
        composite.put({"Key": "k", "RowId": "HEAD"})
        assert composite.query("other").items == []

    def test_query_with_projection(self, composite):
        composite.put({"Key": "k", "RowId": "HEAD", "Value": "big",
                       "NextRow": "r1"})
        result = composite.query("k",
                                 projection=Projection.of("RowId", "NextRow"))
        assert result.items == [{"RowId": "HEAD", "NextRow": "r1"}]

    def test_query_filter(self, composite):
        composite.put({"Key": "k", "RowId": "a", "N": 1})
        composite.put({"Key": "k", "RowId": "b", "N": 5})
        result = composite.query("k", filter_condition=Gt("N", 2))
        assert [r["RowId"] for r in result.items] == ["b"]

    def test_query_reverse(self, composite):
        for row_id in ["a", "b", "c"]:
            composite.put({"Key": "k", "RowId": row_id})
        result = composite.query("k", reverse=True)
        assert [r["RowId"] for r in result.items] == ["c", "b", "a"]

    def test_query_consumed_bytes_shrinks_with_projection(self, composite):
        composite.put({"Key": "k", "RowId": "HEAD", "Value": "v" * 500})
        full = composite.query("k")
        projected = composite.query(
            "k", projection=Projection.of("RowId", "NextRow"))
        assert projected.consumed_bytes < full.consumed_bytes


class TestScanPaging:
    def _fill(self, table, n):
        for i in range(n):
            table.put({"Key": f"k{i:03d}", "N": i})

    def test_scan_all(self, simple):
        self._fill(simple, 10)
        result = simple.scan()
        assert len(result.items) == 10
        assert result.last_evaluated_key is None

    def test_scan_limit_pages(self, simple):
        self._fill(simple, 10)
        result = simple.scan(limit=4)
        assert len(result.items) == 4
        assert result.last_evaluated_key is not None

    def test_scan_resumes_from_last_key(self, simple):
        self._fill(simple, 10)
        seen = []
        start = None
        for _ in range(10):
            result = simple.scan(limit=3, exclusive_start=start)
            seen.extend(item["Key"] for item in result.items)
            start = result.last_evaluated_key
            if start is None:
                break
        assert seen == [f"k{i:03d}" for i in range(10)]

    def test_scan_limit_applies_before_filter(self, simple):
        """DynamoDB semantics: limit counts scanned, not matched, items."""
        self._fill(simple, 10)
        result = simple.scan(filter_condition=Gt("N", 7), limit=5)
        assert result.items == []  # first 5 items all have N <= 7
        assert result.scanned_count == 5
        assert result.last_evaluated_key is not None

    def test_scan_deterministic_order(self, simple):
        self._fill(simple, 5)
        first = [i["Key"] for i in simple.scan().items]
        second = [i["Key"] for i in simple.scan().items]
        assert first == second


class TestSecondaryIndex:
    def test_sparse_index_lookup(self, simple):
        simple.add_index("pending", "Pending")
        simple.put({"Key": "a", "Pending": "yes"})
        simple.put({"Key": "b"})
        simple.put({"Key": "c", "Pending": "yes"})
        keys = {i["Key"] for i in simple.query_index("pending", "yes")}
        assert keys == {"a", "c"}

    def test_index_updated_on_attribute_removal(self, simple):
        from repro.kvstore import Remove
        simple.add_index("pending", "Pending")
        simple.put({"Key": "a", "Pending": "yes"})
        simple.update("a", [Remove("Pending")])
        assert simple.query_index("pending", "yes") == []

    def test_index_updated_on_value_change(self, simple):
        simple.add_index("status", "Status")
        simple.put({"Key": "a", "Status": "open"})
        simple.update("a", [Set("Status", "done")])
        assert simple.query_index("status", "open") == []
        assert [i["Key"] for i in simple.query_index("status", "done")] == [
            "a"]

    def test_index_updated_on_delete(self, simple):
        simple.add_index("status", "Status")
        simple.put({"Key": "a", "Status": "open"})
        simple.delete("a")
        assert simple.query_index("status", "open") == []

    def test_index_backfills_existing_items(self, simple):
        simple.put({"Key": "a", "Status": "open"})
        simple.add_index("status", "Status")
        assert [i["Key"] for i in simple.query_index("status", "open")] == [
            "a"]

    def test_unknown_index_rejected(self, simple):
        with pytest.raises(ValidationError):
            simple.query_index("nope", 1)


class TestStats:
    def test_item_count(self, composite):
        composite.put({"Key": "k", "RowId": "HEAD"})
        composite.put({"Key": "k", "RowId": "r1"})
        composite.put({"Key": "j", "RowId": "HEAD"})
        assert composite.item_count() == 3

    def test_storage_bytes_grows(self, simple):
        before = simple.storage_bytes()
        simple.put({"Key": "a", "Blob": "x" * 1000})
        assert simple.storage_bytes() >= before + 1000
