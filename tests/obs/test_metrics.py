"""Unit tests for ``repro.obs.metrics``: fixed buckets, stable snapshots."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestPrimitives:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge(self):
        g = Gauge()
        assert g.value == 0.0
        g.set(3.5)
        g.set(-1.0)
        assert g.value == -1.0

    def test_histogram_buckets_are_fixed_upper_bounds(self):
        h = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 1.5, 50.0, 1000.0):
            h.observe(value)
        snap = h.snapshot()
        # <=1, <=10, <=100, overflow — boundary values land in-bucket.
        assert snap["buckets"] == [[1.0, 2], [10.0, 1], [100.0, 1],
                                   [None, 1]]
        assert snap["count"] == 5
        assert snap["min"] == 0.5
        assert snap["max"] == 1000.0
        assert snap["sum"] == pytest.approx(1053.0)

    def test_empty_histogram_snapshot(self):
        snap = Histogram(bounds=(1.0,)).snapshot()
        assert snap == {"buckets": [[1.0, 0], [None, 0]], "count": 0,
                        "max": None, "min": None, "sum": 0.0}

    def test_default_bounds_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_metrics_are_name_addressed_and_cached(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_convenience_forms(self):
        reg = MetricsRegistry()
        reg.inc("done")
        reg.inc("done", 2)
        reg.set_gauge("depth", 7.0)
        reg.observe("lat", 3.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"done": 3}
        assert snap["gauges"] == {"depth": 7.0}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_snapshot_is_name_sorted_and_json_stable(self):
        reg = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            reg.inc(name)
            reg.observe(name, 1.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["alpha", "mid", "zeta"]
        assert list(snap["histograms"]) == ["alpha", "mid", "zeta"]
        # Two registries fed the same data export byte-identically.
        other = MetricsRegistry()
        for name in ("mid", "zeta", "alpha"):  # different order
            other.inc(name)
            other.observe(name, 1.0)
        assert (json.dumps(snap, sort_keys=True)
                == json.dumps(other.snapshot(), sort_keys=True))
