"""Span↔metering parity for the resilience layer's observability hooks.

Every retry the wrapper performs must show up *three* ways, in exact
agreement: a ``resilience.backoff`` span in the trace, a
``resilience.retries`` counter in the metrics registry, and the
``ResilienceStats`` counter the snapshot exports. If any two drift the
instrumentation is lying about what the layer did.
"""

from repro.core import BeldiConfig, BeldiRuntime
from repro.kvstore import FaultTimeline, UnavailableError

import pytest


class ThrottleScript:
    """Deterministic duck-typed FaultPolicy: throttle the first ``n``."""

    def __init__(self, n):
        self.remaining = n

    def should_throttle(self, rand, op="", shard=None):
        if self.remaining > 0:
            self.remaining -= 1
            return True
        return False

    def should_crash_leader(self, rand, op="", shard=None):
        return False

    def latency_multiplier(self, rand, op="", shard=None):
        return 1.0


def run_counter(runtime):
    def handler(ctx, payload):
        count = ctx.read("kv", "counter") or 0
        ctx.write("kv", "counter", count + 1)
        return count + 1

    runtime.register_ssf("counter", handler, tables=["kv"])
    return runtime.run_workflow("counter")


def make_runtime(**kwargs):
    return BeldiRuntime(seed=11,
                        config=BeldiConfig(observability=True), **kwargs)


class TestRetryParity:
    def test_backoff_spans_match_retry_counters(self):
        runtime = make_runtime(store_faults=ThrottleScript(n=3))
        try:
            run_counter(runtime)
            stats = runtime.resilience.stats
            assert stats.retries >= 3

            spans = [r for r in runtime.obs.tracer.sorted_records()
                     if r.get("name") == "resilience.backoff"]
            metrics = runtime.obs.metrics.snapshot()
            assert len(spans) == stats.retries
            assert metrics["counters"]["resilience.retries"] == stats.retries
            backoff_hist = metrics["histograms"]["resilience.backoff_ms"]
            assert backoff_hist["count"] == stats.retries
            # The spans *are* the backoff sleeps: their summed duration
            # equals the histogram's summed observations.
            span_total = sum(r["dur"] for r in spans)
            assert span_total == pytest.approx(backoff_hist["sum"])
        finally:
            runtime.kernel.shutdown()

    def test_snapshot_exports_resilience_section(self):
        runtime = make_runtime(store_faults=ThrottleScript(n=2))
        try:
            run_counter(runtime)
            snap = runtime.obs.snapshot(runtime)
            section = snap["resilience"]
            assert section["retries"] == runtime.resilience.stats.retries
            assert section["throttled_errors"] >= 2
            assert "breakers" in section
        finally:
            runtime.kernel.shutdown()


class TestBreakerParity:
    def test_breaker_gauge_and_open_counter(self):
        config = BeldiConfig(observability=True, breaker_threshold=2,
                             retry_max_attempts=6)
        runtime = BeldiRuntime(seed=11, config=config)
        timeline = FaultTimeline().outage(0.0, 1e12)
        BeldiRuntime._install_timeline(runtime.store, timeline)
        runtime.fault_timeline = timeline
        try:
            with pytest.raises(UnavailableError):
                run_counter(runtime)
            stats = runtime.resilience.stats
            metrics = runtime.obs.metrics.snapshot()
            assert metrics["counters"]["resilience.breaker_opens"] == (
                stats.breaker_opens)
            gauges = {name: value
                      for name, value in metrics["gauges"].items()
                      if name.startswith("resilience.breaker.")}
            assert gauges and 2.0 in gauges.values()  # an open breaker
            events = [r for r in runtime.obs.tracer.sorted_records()
                      if str(r.get("name", "")).startswith("breaker:open")]
            assert len(events) == stats.breaker_opens
        finally:
            runtime.kernel.shutdown()


class TestFaultEdgeEvents:
    def test_outage_edges_land_in_trace_and_metrics(self):
        runtime = make_runtime()
        timeline = FaultTimeline().outage(0.0, 30.0)
        BeldiRuntime._install_timeline(runtime.store, timeline)
        runtime.fault_timeline = timeline
        try:
            run_counter(runtime)
            names = [r.get("name") for r in
                     runtime.obs.tracer.sorted_records()]
            assert "fault:outage:start:0" in names
            metrics = runtime.obs.metrics.snapshot()
            assert metrics["counters"]["resilience.fault_edges"] >= 1
        finally:
            runtime.kernel.shutdown()
