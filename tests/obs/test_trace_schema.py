"""Acceptance: the pinned-seed concurrent DST run, traced end to end.

Runs the three-request concurrent mix (``tests/core/dst.py``) with
``observability=True`` and pins the PR's acceptance bar:

- the exported Chrome trace is schema-valid (``validate_chrome_trace``);
- spans nest request → step/op → store round trip;
- every metered store round trip has exactly one span — op for op,
  including every logged write;
- two runs with the same seed and schedule export byte-identical
  traces, JSONL and metric snapshots;
- with the flag off nothing is built and the run's outcome is
  bit-for-bit identical to the traced one.

When ``$OBS_TRACE_FILE`` is set the schema test also writes the Chrome
trace there — the CI ``obs-smoke`` job uploads it as an artifact.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]
                       / "core"))
import dst  # noqa: E402

from repro.obs.tracer import validate_chrome_trace  # noqa: E402


@pytest.fixture(scope="module")
def traced():
    """One crash-free pinned-seed run of the concurrent mix, traced."""
    return dst.run_one(dst.LIGHT_FLAGS)


def test_exported_trace_is_schema_valid(traced):
    obs = traced.travel.obs
    assert obs is not None
    assert traced.movie.obs is obs  # runtimes sharing a store share obs
    trace = obs.tracer.to_chrome()
    assert len(trace["traceEvents"]) > 100
    problems = validate_chrome_trace(trace)
    assert problems == [], problems[:10]
    artifact = os.environ.get("OBS_TRACE_FILE")
    if artifact:
        with open(artifact, "w") as fh:
            json.dump(trace, fh, indent=2, sort_keys=True)


def test_spans_nest_request_step_op_store(traced):
    records = traced.travel.obs.tracer.records
    cats_by_id: dict = {}
    for record in records:
        cats_by_id.setdefault(record["span_id"], set()).add(record["cat"])

    def parent_cats(record):
        return cats_by_id.get(record["parent_id"], set())

    # Store round trips hang off DAAL op spans...
    store_edges = {record["name"] for record in records
                   if record["cat"] == "store"
                   and "op" in parent_cats(record)}
    assert "store.cond_write" in store_edges  # the logged write path
    assert "store.query" in store_edges       # the chain traversal
    # ...op spans hang off request spans...
    assert any(record["cat"] == "op" and "request" in parent_cats(record)
               for record in records)
    # ...and invoke steps hang off requests, with their callee's request
    # span hanging off the step in turn.
    steps = [record for record in records if record["cat"] == "step"]
    assert any("request" in parent_cats(record) for record in steps)
    step_ids = {record["span_id"] for record in steps}
    assert any(record["cat"] == "request"
               and record["parent_id"] in step_ids
               for record in records)
    # Transactions appear as their own layer under the request.
    assert any(record["cat"] == "txn" and record["name"].startswith(
        "txn.finish") for record in records)
    assert any(record["cat"] == "gc" for record in records)


def test_every_store_round_trip_has_exactly_one_span(traced):
    """Span/metering parity, op by op — in particular every logged
    store write (cond_write on the DAAL) has exactly one span."""
    metering = traced.travel.store.metering
    records = traced.travel.obs.tracer.records
    span_counts: dict = {}
    for record in records:
        if record["cat"] == "store":
            span_counts[record["name"]] = span_counts.get(
                record["name"], 0) + 1
    assert metering.ops, "metered run expected"
    for op, rec in sorted(metering.ops.items()):
        assert span_counts.get(f"store.{op}", 0) == rec.count, op
    # No store span without a metered op behind it either.
    metered = {f"store.{op}" for op in metering.ops}
    assert set(span_counts) == metered


def test_same_seed_runs_export_byte_identically(traced):
    second = dst.run_one(dst.LIGHT_FLAGS)
    first_obs, second_obs = traced.travel.obs, second.travel.obs
    assert first_obs.tracer.chrome_json() == second_obs.tracer.chrome_json()
    assert first_obs.tracer.to_jsonl() == second_obs.tracer.to_jsonl()
    assert (json.dumps(first_obs.snapshot(traced.travel), sort_keys=True)
            == json.dumps(second_obs.snapshot(second.travel),
                          sort_keys=True))


def test_flag_off_is_bit_for_bit_identical(traced):
    flags = dict(dst.LIGHT_FLAGS, observability=False)
    dark = dst.run_one(flags)
    assert dark.travel.obs is None
    assert dark.movie.obs is None
    assert getattr(dark.travel.store, "obs", None) is None
    assert dark.kernel.tracer is None
    # Same results, same virtual end time, same bill, same final rows.
    assert dark.results == traced.results
    assert dark.kernel.now == traced.kernel.now
    assert (dark.travel.store.metering.dollar_cost()
            == traced.travel.store.metering.dollar_cost())
    assert dst.final_state(dark) == dst.final_state(traced)


def test_unified_snapshot_sections(traced):
    snap = traced.travel.obs.snapshot(traced.travel)
    # Registry sections are always present.
    assert {"counters", "gauges", "histograms"} <= set(snap)
    # The concurrent mix commits transactions and runs GC passes.
    assert snap["counters"].get("txn.commit", 0) > 0
    assert snap["counters"].get("txn.locks_acquired", 0) > 0
    assert any(name.startswith("gc.") for name in snap["counters"])
    # Native stats are folded in behind the same API.
    assert snap["metering"]["totals"]["requests"] > 0
    assert snap["metering"]["totals"]["dollars"] > 0
    assert len(snap["metering"]["per_shard"]) == 2  # LIGHT_FLAGS shards
    assert snap["tail_cache"]["tail_hits"] >= 0
    assert snap["elasticity"]["checks"] >= 0
    # And the whole snapshot is JSON-clean.
    json.dumps(snap, sort_keys=True, allow_nan=False)
