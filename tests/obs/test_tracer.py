"""Unit tests for ``repro.obs.tracer``: nesting, determinism, exports."""

import json
import threading

import pytest

from repro.obs.tracer import Tracer, validate_chrome_trace


class Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


class TestSpans:
    def test_nesting_defaults_parent_to_enclosing_span(self, tracer,
                                                       clock):
        with tracer.span("outer", span_id="o"):
            clock.t = 5.0
            with tracer.span("inner"):
                clock.t = 8.0
        outer, inner = tracer.records
        assert inner["parent_id"] == "o"
        assert inner["track"] == "o"  # children ride the root's track
        assert outer["ts"] == 0.0 and outer["dur"] == 8.0
        assert inner["ts"] == 5.0 and inner["dur"] == 3.0

    def test_explicit_parent_overrides_stack(self, tracer):
        with tracer.span("root", span_id="r"):
            with tracer.span("cross", parent_id="elsewhere"):
                pass
        assert tracer.records[1]["parent_id"] == "elsewhere"

    def test_span_closes_on_base_exception_and_flags_failure(
            self, tracer, clock):
        class Unwind(BaseException):
            pass

        with pytest.raises(Unwind):
            with tracer.span("doomed"):
                clock.t = 2.0
                raise Unwind()
        record = tracer.records[0]
        assert record["dur"] == 2.0
        assert record["args"]["failed"] is True

    def test_leaked_children_close_with_their_parent(self, tracer,
                                                     clock):
        with tracer.span("parent"):
            tracer.span("leaked")  # handle dropped, never exited
            clock.t = 4.0
        leaked = tracer.records[1]
        assert leaked["dur"] == 4.0

    def test_events_attach_to_the_open_span(self, tracer):
        with tracer.span("s", span_id="s0"):
            tracer.event("ping", detail=1)
        tracer.event("orphan")
        ping, orphan = tracer.records[1], tracer.records[2]
        assert ping["parent_id"] == "s0"
        assert orphan["parent_id"] is None
        assert orphan["track"] == "events"

    def test_record_span_takes_explicit_bounds(self, tracer, clock):
        clock.t = 10.0
        tracer.record_span("store.read", "store", start=7.0, end=9.5)
        record = tracer.records[0]
        assert record["ts"] == 7.0 and record["dur"] == 2.5

    def test_per_thread_stacks_do_not_cross(self, tracer):
        seen = {}

        def other():
            with tracer.span("other-root"):
                pass
            seen["parent"] = tracer.records[-1]["parent_id"]

        with tracer.span("main-root"):
            worker = threading.Thread(target=other)
            worker.start()
            worker.join()
        assert seen["parent"] is None  # not adopted by main's span


class TestSanitization:
    def test_args_never_leak_object_ids(self, tracer):
        class Opaque:
            pass  # default repr embeds id() as 0x...

        with tracer.span("s", weird=Opaque(), ok=(1, "two"),
                         mapping={"b": 2, "a": float("nan")}):
            pass
        args = tracer.records[0]["args"]
        assert args["weird"] == "Opaque"
        assert args["ok"] == [1, "two"]
        assert args["mapping"] == {"a": None, "b": 2}
        assert "0x" not in json.dumps(args)


class TestExports:
    def fill(self, tracer, clock):
        with tracer.span("req", cat="request", span_id="r1"):
            clock.t = 1.0
            with tracer.span("op", cat="op"):
                clock.t = 2.0
                tracer.event("mark")
        clock.t = 2.0
        tracer.record_span("late", "store", start=0.5, end=1.5)

    def test_sorted_records_order_is_ts_phase_seq(self, tracer, clock):
        self.fill(tracer, clock)
        keys = [(r["ts"], r["phase"], r["seq"])
                for r in tracer.sorted_records()]
        assert keys == sorted(keys)
        # The backfilled store span sorts by its start time, not by
        # when it was recorded.
        assert [r["name"] for r in tracer.sorted_records()] == [
            "req", "late", "op", "mark"]

    def test_jsonl_shape(self, tracer, clock):
        self.fill(tracer, clock)
        lines = tracer.to_jsonl().strip().split("\n")
        assert len(lines) == 4
        for line in lines:
            row = json.loads(line)
            assert "phase" not in row
            assert set(row) == {"seq", "name", "cat", "span_id",
                                "parent_id", "track", "ts", "dur",
                                "args"}

    def test_chrome_export_is_valid_and_loadable(self, tracer, clock):
        self.fill(tracer, clock)
        data = tracer.to_chrome()
        assert validate_chrome_trace(data) == []
        phases = [e["ph"] for e in data["traceEvents"]]
        assert phases.count("M") == 2  # one track metadata per root
        assert phases.count("X") == 3
        assert phases.count("i") == 1
        # Virtual ms become trace µs.
        req = next(e for e in data["traceEvents"] if e["name"] == "req")
        assert req["ts"] == 0 and req["dur"] == 2000.0

    def test_same_inputs_export_byte_identically(self):
        def build():
            clock = Clock()
            tracer = Tracer(clock)
            self.fill(tracer, clock)
            return tracer

        a, b = build(), build()
        assert a.chrome_json() == b.chrome_json()
        assert a.to_jsonl() == b.to_jsonl()


class TestValidator:
    def test_flags_structural_problems(self):
        assert validate_chrome_trace({}) == [
            "traceEvents missing or not a list"]
        bad = {"traceEvents": [
            {"ph": "Q", "name": "weird"},
            {"ph": "X", "name": "negative", "ts": -1.0, "dur": 1.0,
             "args": {}},
            {"ph": "X", "name": "nodur", "ts": 0.0, "dur": None,
             "args": {}},
            {"ph": "X", "name": "orphan", "ts": 0.0, "dur": 1.0,
             "args": {"span_id": "a", "parent_id": "ghost"}},
        ]}
        problems = validate_chrome_trace(bad)
        assert len(problems) == 4

    def test_flags_escaping_child(self):
        bad = {"traceEvents": [
            {"ph": "X", "name": "parent", "ts": 0.0, "dur": 1.0,
             "args": {"span_id": "p"}},
            {"ph": "X", "name": "child", "ts": 0.5, "dur": 2.0,
             "args": {"span_id": "c", "parent_id": "p"}},
        ]}
        problems = validate_chrome_trace(bad)
        assert len(problems) == 1 and "escapes" in problems[0]
