"""Unit tests for the serverless platform emulator."""

import pytest

from repro.platform import (
    CrashOnce,
    CrashScript,
    FunctionCrashed,
    FunctionNotFound,
    FunctionTimeout,
    PlatformConfig,
    ServerlessPlatform,
    TooManyRequests,
)
from repro.sim import LatencyModel, RandomSource, SimKernel


def make_platform(seed=1, scale=0.0, **config_kwargs):
    kernel = SimKernel(seed=seed)
    rand = RandomSource(seed)
    platform = ServerlessPlatform(
        kernel, rand=rand.child("platform"),
        latency=LatencyModel(rand.child("latency"), scale=scale),
        config=PlatformConfig(**config_kwargs))
    return kernel, platform


class TestInvocation:
    def test_sync_invoke_returns_result(self):
        kernel, platform = make_platform()
        platform.register("double", lambda ctx, payload: payload * 2)
        results = []

        def client():
            results.append(platform.sync_invoke("double", 21))

        kernel.spawn(client)
        kernel.run()
        assert results == [42]

    def test_handler_gets_unique_request_ids(self):
        kernel, platform = make_platform()
        seen = []
        platform.register("f", lambda ctx, p: seen.append(ctx.request_id))

        def client():
            platform.sync_invoke("f", None)
            platform.sync_invoke("f", None)

        kernel.spawn(client)
        kernel.run()
        assert len(seen) == 2 and seen[0] != seen[1]

    def test_invocation_index_increments(self):
        kernel, platform = make_platform()
        indexes = []
        platform.register("f",
                          lambda ctx, p: indexes.append(
                              ctx.invocation_index))

        def client():
            for _ in range(3):
                platform.sync_invoke("f", None)

        kernel.spawn(client)
        kernel.run()
        assert indexes == [0, 1, 2]

    def test_unknown_function_rejected(self):
        kernel, platform = make_platform()
        errors = []

        def client():
            try:
                platform.sync_invoke("ghost", None)
            except FunctionNotFound:
                errors.append("not-found")

        kernel.spawn(client)
        kernel.run()
        assert errors == ["not-found"]

    def test_nested_invocation_through_context(self):
        kernel, platform = make_platform()
        platform.register("inner", lambda ctx, p: p + 1)
        platform.register("outer",
                          lambda ctx, p: ctx.sync_invoke("inner", p) * 10)
        results = []
        kernel.spawn(lambda: results.append(
            platform.client_request("outer", 1)))
        kernel.run()
        assert results == [20]

    def test_async_invoke_runs_eventually(self):
        kernel, platform = make_platform()
        ran = []
        platform.register("bg", lambda ctx, p: ran.append(p))

        def client():
            platform.async_invoke("bg", "payload")

        kernel.spawn(client)
        kernel.run()
        assert ran == ["payload"]

    def test_application_error_propagates_to_sync_caller(self):
        kernel, platform = make_platform()

        def bad(ctx, payload):
            raise ValueError("app bug")

        platform.register("bad", bad)
        caught = []

        def client():
            try:
                platform.sync_invoke("bad", None)
            except ValueError as exc:
                caught.append(str(exc))

        kernel.spawn(client)
        kernel.run()
        assert caught == ["app bug"]


class TestConcurrencyCap:
    def test_client_rejected_at_cap(self):
        kernel, platform = make_platform(concurrency_limit=2,
                                         entry_admission_fraction=1.0)

        def slow(ctx, payload):
            ctx.sleep(100.0)
            return "ok"

        platform.register("slow", slow)
        outcomes = []

        def client(i):
            try:
                outcomes.append((i, platform.client_request("slow", None)))
            except TooManyRequests:
                outcomes.append((i, "rejected"))

        for i in range(4):
            kernel.spawn(client, i, delay=float(i))
        kernel.run()
        rejected = [o for o in outcomes if o[1] == "rejected"]
        assert len(rejected) == 2
        assert platform.stats.rejected == 2

    def test_gateway_reserves_headroom_for_internal_invokes(self):
        """With admission at 50%, half the cap stays available for the
        workflow-internal invocations of admitted requests."""
        kernel, platform = make_platform(concurrency_limit=4,
                                         entry_admission_fraction=0.5)
        platform.register("inner", lambda ctx, p: ctx.sleep(50.0))

        def outer(ctx, payload):
            ctx.sync_invoke("inner", None)
            return "ok"

        platform.register("outer", outer)
        outcomes = []

        def client(i):
            try:
                outcomes.append(platform.client_request("outer", None))
            except TooManyRequests:
                outcomes.append("rejected")

        # While one request runs it holds 2 of 4 slots (outer + inner),
        # which is exactly the admission limit: overlapping arrivals are
        # rejected, spaced ones are admitted.
        for delay in (0.0, 10.0, 20.0, 100.0):
            kernel.spawn(client, delay, delay=delay)
        kernel.run()
        assert outcomes.count("ok") == 2
        assert outcomes.count("rejected") == 2

    def test_internal_invoke_waits_for_slot(self):
        kernel, platform = make_platform(concurrency_limit=1)

        def slow(ctx, payload):
            ctx.sleep(50.0)
            return payload

        platform.register("slow", slow)
        results = []
        kernel.spawn(lambda: results.append(platform.sync_invoke("slow", 1)))
        kernel.spawn(lambda: results.append(platform.sync_invoke("slow", 2)),
                     delay=1.0)
        kernel.run()
        assert sorted(results) == [1, 2]

    def test_peak_concurrency_tracked(self):
        kernel, platform = make_platform(concurrency_limit=10)
        platform.register("slow", lambda ctx, p: ctx.sleep(100.0))
        for i in range(5):
            kernel.spawn(lambda: platform.sync_invoke("slow", None))
        kernel.run()
        assert platform.stats.peak_concurrency == 5


class TestTimeout:
    def test_runaway_function_killed(self):
        kernel, platform = make_platform(default_timeout=50.0)

        def runaway(ctx, payload):
            ctx.sleep(10_000.0)

        platform.register("runaway", runaway)
        caught = []

        def client():
            try:
                platform.sync_invoke("runaway", None)
            except FunctionTimeout:
                caught.append(kernel.now)

        kernel.spawn(client)
        kernel.run()
        assert caught and caught[0] == pytest.approx(50.0)
        assert platform.stats.timeouts == 1

    def test_fast_function_not_killed(self):
        kernel, platform = make_platform(default_timeout=50.0)
        platform.register("fast", lambda ctx, p: "ok")
        results = []
        kernel.spawn(lambda: results.append(platform.sync_invoke("fast", 0)))
        kernel.run()
        assert results == ["ok"]
        assert platform.stats.timeouts == 0

    def test_per_function_timeout_override(self):
        kernel, platform = make_platform(default_timeout=1000.0)

        def napper(ctx, payload):
            ctx.sleep(100.0)
            return "done"

        platform.register("napper", napper, timeout=10.0)
        caught = []

        def client():
            try:
                platform.sync_invoke("napper", None)
            except FunctionTimeout:
                caught.append(True)

        kernel.spawn(client)
        kernel.run()
        assert caught == [True]


class TestCrashInjection:
    def test_crash_once_at_tag(self):
        kernel, platform = make_platform()
        attempts = []

        def handler(ctx, payload):
            attempts.append(ctx.invocation_index)
            ctx.crash_point("mid")
            return "survived"

        platform.register("f", handler)
        platform.crash_policy = CrashOnce("f", tag="mid")
        outcomes = []

        def client():
            try:
                outcomes.append(platform.sync_invoke("f", None))
            except FunctionCrashed:
                outcomes.append("crashed")
            outcomes.append(platform.sync_invoke("f", None))

        kernel.spawn(client)
        kernel.run()
        assert outcomes == ["crashed", "survived"]
        assert platform.stats.injected_crashes == 1

    def test_crash_script_targets_specific_invocation(self):
        kernel, platform = make_platform()

        def handler(ctx, payload):
            ctx.crash_point("mid")
            return ctx.invocation_index

        platform.register("f", handler)
        platform.crash_policy = CrashScript.of(("f", 1, "mid"))
        outcomes = []

        def client():
            for _ in range(3):
                try:
                    outcomes.append(platform.sync_invoke("f", None))
                except FunctionCrashed:
                    outcomes.append("crashed")

        kernel.spawn(client)
        kernel.run()
        assert outcomes == [0, "crashed", 2]

    def test_crash_is_not_catchable_by_handler(self):
        kernel, platform = make_platform()

        def sneaky(ctx, payload):
            try:
                ctx.crash_point("mid")
            except Exception:  # noqa: BLE001 - the point of the test
                return "caught"
            return "no-crash"

        platform.register("f", sneaky)
        platform.crash_policy = CrashOnce("f", tag="mid")
        outcomes = []

        def client():
            try:
                outcomes.append(platform.sync_invoke("f", None))
            except FunctionCrashed:
                outcomes.append("crashed")

        kernel.spawn(client)
        kernel.run()
        assert outcomes == ["crashed"]


class TestWarmStarts:
    def test_second_invocation_is_warm(self):
        kernel, platform = make_platform(scale=1.0)
        platform.register("f", lambda ctx, p: ctx.cold_start)
        observed = []

        def client():
            observed.append(platform.sync_invoke("f", None))
            observed.append(platform.sync_invoke("f", None))

        kernel.spawn(client)
        kernel.run()
        assert observed == [True, False]
        assert platform.stats.cold_starts == 1
        assert platform.stats.warm_starts == 1

    def test_warm_container_expires(self):
        kernel, platform = make_platform(scale=0.0, warm_keepalive=10.0)
        platform.register("f", lambda ctx, p: ctx.cold_start)
        observed = []

        def client():
            observed.append(platform.sync_invoke("f", None))
            kernel.sleep(100.0)
            observed.append(platform.sync_invoke("f", None))

        kernel.spawn(client)
        kernel.run()
        assert observed == [True, True]

    def test_crashed_container_not_reused(self):
        kernel, platform = make_platform()

        def handler(ctx, payload):
            ctx.crash_point("mid")
            return ctx.cold_start

        platform.register("f", handler)
        platform.crash_policy = CrashOnce("f", tag="mid")
        observed = []

        def client():
            try:
                platform.sync_invoke("f", None)
            except FunctionCrashed:
                pass
            observed.append(platform.sync_invoke("f", None))

        kernel.spawn(client)
        kernel.run()
        assert observed == [True]  # still a cold start


class TestTimers:
    def test_timer_fires_periodically(self):
        kernel, platform = make_platform()
        fired = []
        platform.register("tick", lambda ctx, p: fired.append(kernel.now))
        platform.add_timer("tick", period=10.0)
        kernel.run(until=45.0)
        platform.stop_timers()
        kernel.run()
        assert len(fired) == 4

    def test_timer_survives_handler_errors(self):
        kernel, platform = make_platform()
        calls = []

        def flaky(ctx, payload):
            calls.append(1)
            raise RuntimeError("boom")

        platform.register("flaky", flaky)
        handle = platform.add_timer("flaky", period=10.0)
        kernel.run(until=35.0)
        platform.stop_timers()
        kernel.run()
        assert len(calls) == 3
        assert handle["errors"] == 3

    def test_stop_timers(self):
        kernel, platform = make_platform()
        fired = []
        platform.register("tick", lambda ctx, p: fired.append(1))
        platform.add_timer("tick", period=10.0)
        kernel.run(until=25.0)
        platform.stop_timers()
        kernel.run()
        assert len(fired) == 2
