"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    FifoSchedule,
    ProcessKilled,
    RandomSchedule,
    ReplaySchedule,
    SimKernel,
    SimulationError,
)


@pytest.fixture
def kernel():
    k = SimKernel(seed=1)
    yield k
    k.shutdown()


class TestBasicScheduling:
    def test_single_process_runs(self, kernel):
        trace = []
        kernel.spawn(lambda: trace.append("ran"))
        kernel.run()
        assert trace == ["ran"]

    def test_sleep_advances_virtual_time(self, kernel):
        times = []

        def body():
            kernel.sleep(5.0)
            times.append(kernel.now)
            kernel.sleep(2.5)
            times.append(kernel.now)

        kernel.spawn(body)
        kernel.run()
        assert times == [5.0, 7.5]

    def test_spawn_delay(self, kernel):
        times = []
        kernel.spawn(lambda: times.append(kernel.now), delay=3.0)
        kernel.run()
        assert times == [3.0]

    def test_processes_interleave_by_time(self, kernel):
        trace = []

        def proc(name, first, second):
            kernel.sleep(first)
            trace.append((name, kernel.now))
            kernel.sleep(second)
            trace.append((name, kernel.now))

        kernel.spawn(proc, "a", 1.0, 10.0)
        kernel.spawn(proc, "b", 2.0, 2.0)
        kernel.run()
        assert trace == [("a", 1.0), ("b", 2.0), ("b", 4.0), ("a", 11.0)]

    def test_fifo_order_at_equal_times(self, kernel):
        trace = []
        for i in range(5):
            kernel.spawn(lambda i=i: trace.append(i), delay=1.0)
        kernel.run()
        assert trace == [0, 1, 2, 3, 4]

    def test_run_until_horizon(self, kernel):
        trace = []
        kernel.spawn(lambda: trace.append("late"), delay=100.0)
        kernel.run(until=50.0)
        assert trace == []
        assert kernel.now == 50.0
        kernel.run()
        assert trace == ["late"]

    def test_process_result_captured(self, kernel):
        proc = kernel.spawn(lambda: 42)
        kernel.run()
        assert proc.finished
        assert proc.result == 42

    def test_process_error_captured(self, kernel):
        def boom():
            raise ValueError("bad")

        proc = kernel.spawn(boom)
        kernel.run()
        assert isinstance(proc.error, ValueError)

    def test_zero_sleep_yields(self, kernel):
        trace = []

        def a():
            trace.append("a1")
            kernel.sleep(0.0)
            trace.append("a2")

        def b():
            trace.append("b1")

        kernel.spawn(a)
        kernel.spawn(b)
        kernel.run()
        assert trace == ["a1", "b1", "a2"]


class TestEvents:
    def test_wait_and_set(self, kernel):
        evt = kernel.event("e")
        trace = []

        def waiter():
            kernel.wait(evt)
            trace.append(("woke", kernel.now, evt.value))

        def setter():
            kernel.sleep(4.0)
            evt.set("payload")

        kernel.spawn(waiter)
        kernel.spawn(setter)
        kernel.run()
        assert trace == [("woke", 4.0, "payload")]

    def test_wait_on_already_set_event(self, kernel):
        evt = kernel.event()
        evt.set(1)
        trace = []
        kernel.spawn(lambda: trace.append(kernel.wait(evt)))
        kernel.run()
        assert trace == [True]

    def test_wait_timeout(self, kernel):
        evt = kernel.event()
        results = []

        def waiter():
            results.append(kernel.wait(evt, timeout=2.0))
            results.append(kernel.now)

        kernel.spawn(waiter)
        kernel.run()
        assert results == [False, 2.0]

    def test_event_beats_timeout(self, kernel):
        evt = kernel.event()
        results = []

        def waiter():
            results.append(kernel.wait(evt, timeout=10.0))
            results.append(kernel.now)

        kernel.spawn(waiter)
        kernel.spawn(lambda: evt.set(), delay=1.0)
        kernel.run()
        assert results == [True, 1.0]
        # The stale timeout wakeup must not disturb later execution.
        assert kernel.run() >= 1.0

    def test_multiple_waiters_all_wake(self, kernel):
        evt = kernel.event()
        woke = []
        for i in range(4):
            kernel.spawn(lambda i=i: (kernel.wait(evt), woke.append(i)))
        kernel.spawn(lambda: evt.set(), delay=1.0)
        kernel.run()
        assert sorted(woke) == [0, 1, 2, 3]

    def test_set_is_idempotent(self, kernel):
        evt = kernel.event()
        evt.set("first")
        evt.set("second")
        assert evt.value == "first"


class TestJoin:
    def test_join_returns_result(self, kernel):
        results = []

        def child():
            kernel.sleep(3.0)
            return "done"

        def parent():
            proc = kernel.spawn(child)
            results.append(kernel.join(proc))
            results.append(kernel.now)

        kernel.spawn(parent)
        kernel.run()
        assert results == ["done", 3.0]

    def test_join_reraises_child_error(self, kernel):
        caught = []

        def child():
            raise RuntimeError("child failed")

        def parent():
            proc = kernel.spawn(child)
            try:
                kernel.join(proc)
            except RuntimeError as exc:
                caught.append(str(exc))

        kernel.spawn(parent)
        kernel.run()
        assert caught == ["child failed"]

    def test_join_killed_child_returns_none(self, kernel):
        def child():
            kernel.sleep(100.0)

        def parent():
            proc = kernel.spawn(child)
            kernel.sleep(1.0)
            proc.kill()
            assert kernel.join(proc) is None

        parent_proc = kernel.spawn(parent)
        kernel.run()
        assert parent_proc.error is None


class TestKill:
    def test_kill_blocked_process(self, kernel):
        trace = []

        def victim():
            trace.append("start")
            kernel.sleep(100.0)
            trace.append("never")

        victim_proc = kernel.spawn(victim)

        def killer():
            kernel.sleep(5.0)
            victim_proc.kill()

        kernel.spawn(killer)
        kernel.run()
        assert trace == ["start"]
        assert victim_proc.finished
        assert isinstance(victim_proc.error, ProcessKilled)

    def test_kill_before_start(self, kernel):
        trace = []
        victim = kernel.spawn(lambda: trace.append("ran"), delay=10.0)

        def killer():
            victim.kill()

        kernel.spawn(killer)
        kernel.run()
        assert trace == []
        assert victim.finished
        assert isinstance(victim.error, ProcessKilled)

    def test_kill_is_uncatchable_by_except_exception(self, kernel):
        trace = []

        def victim():
            try:
                kernel.sleep(100.0)
            except Exception:  # noqa: BLE001 - the point of the test
                trace.append("caught")

        victim_proc = kernel.spawn(victim)
        kernel.spawn(lambda: victim_proc.kill(), delay=1.0)
        kernel.run()
        assert trace == []
        assert isinstance(victim_proc.error, ProcessKilled)

    def test_kill_finished_process_is_noop(self, kernel):
        proc = kernel.spawn(lambda: "ok")
        kernel.run()
        proc.kill()
        kernel.run()
        assert proc.result == "ok"


class TestWaiterHygiene:
    def test_killed_waiter_discarded_from_event(self, kernel):
        """Regression: a process killed while blocked in wait() used to
        stay in the event's waiter list forever (ghost wakeups)."""
        evt = kernel.event("gate")
        victim = kernel.spawn(lambda: kernel.wait(evt))
        kernel.spawn(lambda: victim.kill(), delay=1.0)
        kernel.run()
        assert victim.finished
        assert evt._waiters == []
        # A later set() must find no dead waiters to wake.
        kernel.spawn(lambda: evt.set("late"), delay=1.0)
        kernel.run()
        assert evt.is_set

    def test_killed_waiter_discarded_before_wakeup_delivery(self, kernel):
        """kill() removes the waiter registration immediately, not just
        when the kill exception unwinds the wait."""
        evt = kernel.event("gate")
        victim = kernel.spawn(lambda: kernel.wait(evt))

        def killer():
            kernel.sleep(1.0)
            victim.kill()
            assert evt._waiters == []  # discarded synchronously

        killer_proc = kernel.spawn(killer)
        kernel.run()
        assert killer_proc.error is None
        assert isinstance(victim.error, ProcessKilled)

    def test_timed_out_waiter_discarded(self, kernel):
        evt = kernel.event("gate")
        kernel.spawn(lambda: kernel.wait(evt, timeout=2.0))
        kernel.run()
        assert evt._waiters == []


class TestDeadlockDetection:
    def test_deadlock_raises_with_diagnostic(self, kernel):
        """Regression: run_until_processes_exit used to return silently
        when survivors were blocked on events nobody will ever set."""
        evt = kernel.event("never-set")
        stuck = kernel.spawn(lambda: kernel.wait(evt), name="stuck")
        with pytest.raises(SimulationError) as excinfo:
            kernel.run_until_processes_exit([stuck])
        message = str(excinfo.value)
        assert "deadlock" in message
        assert "stuck" in message
        assert "never-set" in message

    def test_no_deadlock_when_event_is_set(self, kernel):
        evt = kernel.event("gate")
        waiter = kernel.spawn(lambda: kernel.wait(evt))
        kernel.spawn(lambda: evt.set(), delay=3.0)
        kernel.run_until_processes_exit([waiter])
        assert waiter.finished

    def test_limit_returns_instead_of_raising(self, kernel):
        slow = kernel.spawn(lambda: kernel.sleep(100.0))
        assert kernel.run_until_processes_exit([slow], limit=10.0) == 10.0
        assert not slow.finished
        kernel.run_until_processes_exit([slow])
        assert slow.finished


class TestEventTimeoutTies:
    def test_event_wins_same_instant_tie(self, kernel):
        """A set() landing at exactly the timeout instant wins: the
        waiter observes True, not a timeout. (Previously resolved by
        heap insertion order — the timeout, scheduled first, won.)"""
        evt = kernel.event("tie")
        results = []

        def waiter():
            results.append(kernel.wait(evt, timeout=5.0))
            results.append(kernel.now)

        kernel.spawn(waiter)

        def setter():
            kernel.sleep(5.0)
            evt.set("on-the-wire")

        kernel.spawn(setter)
        kernel.run()
        assert results == [True, 5.0]

    def test_timeout_still_fires_when_nothing_sets(self, kernel):
        evt = kernel.event("tie")
        results = []
        kernel.spawn(lambda: results.append(kernel.wait(evt, timeout=5.0)))
        kernel.run()
        assert results == [False]


class TestSchedules:
    def _trace_run(self, schedule):
        kernel = SimKernel(seed=1, schedule=schedule)
        kernel.capture_trace = True
        trace = []
        for i in range(4):
            def body(i=i):
                kernel.sleep(1.0)
                trace.append(i)
            kernel.spawn(body, name=f"w{i}")
        kernel.run()
        kernel.shutdown()
        return trace, list(kernel.schedule_trace), list(kernel.fired_trace)

    def test_fifo_schedule_matches_no_schedule(self):
        baseline, _, _ = self._trace_run(None)
        fifo, decisions, _ = self._trace_run(FifoSchedule())
        assert fifo == baseline == [0, 1, 2, 3]
        assert all(idx == 0 for idx in decisions)

    def test_random_schedule_records_replayable_trace(self):
        shuffled, decisions, fired = self._trace_run(RandomSchedule(9))
        assert sorted(shuffled) == [0, 1, 2, 3]
        assert decisions, "multi-candidate decisions must be recorded"
        replayed, redecisions, refired = self._trace_run(
            ReplaySchedule(decisions))
        assert replayed == shuffled
        assert redecisions == decisions
        assert refired == fired

    def test_replay_divergence_raises(self):
        kernel = SimKernel(seed=1, schedule=ReplaySchedule([99]))
        for i in range(3):
            kernel.spawn(lambda: None, name=f"w{i}")
        with pytest.raises(SimulationError, match="replay diverged"):
            kernel.run()
        kernel.shutdown()

    def test_interleave_point_noop_without_schedule(self, kernel):
        order = []

        def a():
            order.append("a1")
            kernel.interleave_point("probe")
            order.append("a2")

        kernel.spawn(a)
        kernel.spawn(lambda: order.append("b"))
        kernel.run()
        assert order == ["a1", "a2", "b"]

    def test_interleave_point_yields_under_exploring_schedule(self):
        # Decision 1 picks a's spawn over b's; a then yields at the
        # interleave point, and decision 2 lets b run in the gap.
        kernel = SimKernel(seed=1, schedule=ReplaySchedule([0, 0]))
        order = []

        def a():
            order.append("a1")
            kernel.interleave_point("probe")
            order.append("a2")

        kernel.spawn(a)
        kernel.spawn(lambda: order.append("b"))
        kernel.run()
        kernel.shutdown()
        assert order == ["a1", "b", "a2"]


class TestDeterminism:
    def _run_once(self, seed):
        kernel = SimKernel(seed=seed)
        trace = []

        def worker(name, rand):
            for _ in range(5):
                kernel.sleep(rand.uniform(0.1, 2.0))
                trace.append((name, round(kernel.now, 6)))

        from repro.sim import RandomSource
        root = RandomSource(seed)
        for i in range(4):
            kernel.spawn(worker, f"w{i}", root.child(f"w{i}"))
        kernel.run()
        kernel.shutdown()
        return trace

    def test_same_seed_same_trace(self):
        assert self._run_once(7) == self._run_once(7)

    def test_different_seed_different_trace(self):
        assert self._run_once(7) != self._run_once(8)
