"""Golden-pinned kernel determinism: the DST mix, byte-for-byte.

The sim-kernel speed pass (ISSUE 9) refactors the event loop — closure-
free wakeup entries, lazy labels, the solo-sleep fast path — and nothing
may shift a single event. These goldens were recorded at the pre-refactor
kernel (PR 8 head, commit ``108b710``) by running the concurrent DST mix
(two contending travel reservations + a movie workflow, one kernel, one
shared store; see ``tests/core/dst.py``) with ``capture_trace`` on, and
pin, per case:

- the full ``fired_trace`` — every resumed wakeup as ``(virtual time,
  label)``, hashed over its canonical JSON, so the refactored kernel
  must reproduce the exact ``(time, phase, seq)`` pop order *and* the
  exact label strings (including wait/timeout tie-breaks: a ``set()``
  at the timeout instant still wins);
- the full ``schedule_trace`` (inline, not hashed) for the explored
  cases — every multi-candidate decision index under a pinned
  :class:`~repro.sim.schedule.RandomSchedule`;
- a digest of the final store state (every env table's full contents)
  and the final virtual clock.

Any drift — an event reordered, a label reformatted, a latency draw
moved — changes a hash and fails loudly. To re-record after an
*intentional* semantic change (never for the speed pass itself), run::

    KERNEL_GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest \
        tests/sim/test_kernel_goldens.py

and commit the refreshed ``goldens/kernel_dst.json`` with a justification
of why the event order was allowed to move (see docs/testing.md).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "core"))

import dst  # noqa: E402  (the tests/core DST harness)
from repro.sim import RandomSchedule  # noqa: E402

GOLDEN_PATH = pathlib.Path(__file__).parent / "goldens" / "kernel_dst.json"
REGEN = bool(os.environ.get("KERNEL_GOLDEN_REGEN"))

#: Every protocol/optimization flag off: the acceptance topology. The
#: kernel under test is exactly the seed's substrate — one store, no
#: sharding, no caches, no overlap — so the goldens isolate *kernel*
#: behavior from every layer above it.
FLAGS_OFF = dict(tail_cache=False, batch_reads=False, async_io=False,
                 batch_log_writes=False, elastic=False, shards=1,
                 observability=False)

#: (case name) -> (flags, schedule seed or None for pure-FIFO heap order).
CASES = {
    "fifo-flags-off": (FLAGS_OFF, None),
    "random-s1-flags-off": (FLAGS_OFF, 1),
    "random-s2-flags-off": (FLAGS_OFF, 2),
    # One deep case so sharded/elastic kernel traffic (2PC interleave
    # points, migration yields) is pinned too — still deterministic.
    "fifo-light-flags": (dst.LIGHT_FLAGS, None),
}


def _digest(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def _run_case(flags: dict, schedule_seed) -> dict:
    schedule = (RandomSchedule(schedule_seed)
                if schedule_seed is not None else None)
    h = dst.run_one(flags, schedule=schedule, capture_trace=True)
    fired = [[when, label] for when, label in h.kernel.fired_trace]
    return {
        "final_now": h.kernel.now,
        "fired_len": len(fired),
        "fired_sha256": _digest(fired),
        "fired_head": fired[:5],
        "fired_tail": fired[-5:],
        "schedule_trace": list(h.kernel.schedule_trace),
        "state_sha256": _digest(dst.final_state(h)),
        "results": json.loads(json.dumps(h.results, sort_keys=True,
                                         default=repr)),
    }


@pytest.fixture(scope="module")
def goldens() -> dict:
    if REGEN:
        recorded = {name: _run_case(*spec) for name, spec in CASES.items()}
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(recorded, indent=2, sort_keys=True) + "\n")
        return recorded
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; record with KERNEL_GOLDEN_REGEN=1")
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("case", sorted(CASES))
def test_kernel_reproduces_golden(case, goldens):
    if REGEN:
        pytest.skip("goldens regenerated, nothing to compare against")
    flags, schedule_seed = CASES[case]
    got = _run_case(flags, schedule_seed)
    want = goldens[case]
    # Compare the cheap scalars first so a drift names *where* it moved
    # before the hash says only *that* it moved.
    assert got["fired_len"] == want["fired_len"], (
        "event count drifted — the kernel fired a different number of "
        "wakeups than the pre-refactor recording")
    assert got["fired_head"] == want["fired_head"]
    assert got["fired_tail"] == want["fired_tail"]
    assert got["schedule_trace"] == want["schedule_trace"], (
        "multi-candidate decisions diverged — tie groups changed")
    assert got["final_now"] == want["final_now"]
    assert got["fired_sha256"] == want["fired_sha256"], (
        "fired_trace hash drifted: some (time, phase, seq) ordering or "
        "label changed between the recorded and refactored kernels")
    assert got["state_sha256"] == want["state_sha256"], (
        "final store state diverged from the pre-refactor recording")
    assert got["results"] == want["results"]


def test_same_seed_twice_is_bit_identical():
    """Control: two fresh in-process runs of one case agree with each
    other (catches nondeterminism that would also poison the goldens —
    e.g. id()-dependent ordering surviving into the trace)."""
    first = _run_case(*CASES["fifo-flags-off"])
    second = _run_case(*CASES["fifo-flags-off"])
    assert first == second
