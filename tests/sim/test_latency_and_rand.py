"""Unit tests for latency models and seeded randomness."""

import math

import pytest

from repro.sim import LatencyModel, LatencySpec, RandomSource, \
    lognormal_from_median
from repro.sim.latency import DEFAULT_SPECS


class TestLognormalCalibration:
    def test_median_recovered(self):
        mu, sigma = lognormal_from_median(10.0, 40.0)
        assert math.exp(mu) == pytest.approx(10.0)
        assert sigma > 0

    def test_degenerate_distribution(self):
        mu, sigma = lognormal_from_median(5.0, 5.0)
        assert sigma == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            lognormal_from_median(0.0, 1.0)
        with pytest.raises(ValueError):
            lognormal_from_median(10.0, 5.0)

    def test_sampled_median_close_to_spec(self):
        rand = RandomSource(1)
        model = LatencyModel(rand, specs={
            "x": LatencySpec(median=10.0, p99=40.0)})
        samples = sorted(model.sample("x") for _ in range(4001))
        assert samples[2000] == pytest.approx(10.0, rel=0.15)

    def test_p99_close_to_spec(self):
        rand = RandomSource(2)
        model = LatencyModel(rand, specs={
            "x": LatencySpec(median=10.0, p99=40.0)})
        samples = sorted(model.sample("x") for _ in range(20_000))
        p99 = samples[int(0.99 * len(samples))]
        assert p99 == pytest.approx(40.0, rel=0.25)


class TestLatencyModel:
    def test_zero_model_is_instant(self):
        model = LatencyModel.zero()
        assert model.sample("db.read") == 0.0

    def test_per_unit_cost_scales(self):
        rand = RandomSource(3)
        model = LatencyModel(rand, specs={
            "scan": LatencySpec(median=5.0, p99=5.0, per_unit=1.0)})
        assert model.sample("scan", units=10) == pytest.approx(15.0)

    def test_unknown_primitive_rejected(self):
        with pytest.raises(KeyError):
            LatencyModel.zero().sample("nope")

    def test_default_specs_cover_all_primitives(self):
        needed = {"db.read", "db.write", "db.cond_write", "db.scan",
                  "db.query", "db.txn", "db.delete", "lambda.dispatch",
                  "lambda.cold_start", "lambda.compute",
                  "lambda.async_ack"}
        assert needed <= set(DEFAULT_SPECS)

    def test_scale_multiplies(self):
        rand = RandomSource(4)
        half = LatencyModel(rand.child("a"), specs={
            "x": LatencySpec(median=10.0, p99=10.0)}, scale=0.5)
        assert half.sample("x") == pytest.approx(5.0)


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a = [RandomSource(7).random() for _ in range(5)]
        b = [RandomSource(7).random() for _ in range(5)]
        assert a == b

    def test_children_are_independent(self):
        root = RandomSource(7)
        child_a = root.child("a")
        child_b = root.child("b")
        assert [child_a.random() for _ in range(3)] != [
            child_b.random() for _ in range(3)]

    def test_child_streams_stable_under_sibling_use(self):
        root1 = RandomSource(7)
        _ = [root1.child("noise").random() for _ in range(10)]
        v1 = root1.child("target").random()
        root2 = RandomSource(7)
        v2 = root2.child("target").random()
        assert v1 == v2

    def test_uuid_unique_and_deterministic(self):
        src = RandomSource(9)
        ids = {src.uuid() for _ in range(1000)}
        assert len(ids) == 1000
        assert RandomSource(9).uuid() == RandomSource(9).uuid()

    def test_normal_index_in_bounds_and_central(self):
        src = RandomSource(11)
        draws = [src.normal_index(100) for _ in range(2000)]
        assert all(0 <= d < 100 for d in draws)
        mean = sum(draws) / len(draws)
        assert 40 <= mean <= 60  # centred mid-catalogue (§7.2)

    def test_normal_index_rejects_empty(self):
        with pytest.raises(ValueError):
            RandomSource(1).normal_index(0)

    def test_choices_respects_weights(self):
        src = RandomSource(13)
        picks = src.choices(["a", "b"], weights=[0.99, 0.01], k=500)
        assert picks.count("a") > 400
