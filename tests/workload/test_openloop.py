"""Tests for the open-loop harness: arrival processes, admission
control, measurement semantics, and exactly-once under crashes.

Four layers, mirroring the module's own structure:

- **arrival generators** — determinism (same seed, same sequence),
  empirical rate against theory, bursty duty cycles, stable merges
  (hypothesis drives the shape properties);
- **admission window** — deterministic shedding, FIFO slot handoff,
  queue bounds, and the kill-a-queued-waiter path that crash sweeps
  exercise (no capacity may leak);
- **open-loop driver** — response time runs from the *intended*
  arrival (coordinated omission is structurally impossible), warmup
  exclusion, shed accounting, knee detection;
- **crash sweep** — an open-loop mix with an injected crash at every
  sampled crash point still applies each request's effect exactly
  once after intent-collector recovery.
"""

from __future__ import annotations

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BeldiConfig, BeldiRuntime, daal, intents
from repro.platform import CrashOnce, PlatformConfig, RecordingPolicy
from repro.sim.kernel import SimKernel
from repro.sim.randsrc import RandomSource
from repro.workload import (
    AdmissionWindow,
    OpenLoopConfig,
    OpenLoopPoint,
    OpenLoopResult,
    bursty_arrivals,
    find_knee,
    merge_streams,
    poisson_arrivals,
    run_open_loop,
)

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)
RATES = st.floats(min_value=0.5, max_value=2000.0,
                  allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------

class TestPoissonArrivals:
    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, rate=RATES)
    def test_same_seed_same_sequence(self, seed, rate):
        """The sweep's reproducibility rests on this: arrivals are a pure
        function of (seed, rate, horizon)."""
        first = poisson_arrivals(rate, 2_000.0, RandomSource(seed, "p"))
        second = poisson_arrivals(rate, 2_000.0, RandomSource(seed, "p"))
        assert first == second

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, rate=RATES)
    def test_sorted_within_horizon(self, seed, rate):
        times = poisson_arrivals(rate, 2_000.0, RandomSource(seed, "p"))
        assert all(a < b for a, b in zip(times, times[1:]))
        assert all(0.0 <= t < 2_000.0 for t in times)

    def test_different_seed_differs(self):
        a = poisson_arrivals(100.0, 5_000.0, RandomSource(1, "p"))
        b = poisson_arrivals(100.0, 5_000.0, RandomSource(2, "p"))
        assert a != b

    def test_empirical_rate_matches_target(self):
        """500 RPS over 200 virtual seconds: the count is Poisson with
        mean 100,000, sigma ~316 — a 4-sigma band is [98.7k, 101.3k]."""
        times = poisson_arrivals(500.0, 200_000.0, RandomSource(9, "p"))
        assert 98_700 <= len(times) <= 101_300

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 1_000.0, RandomSource(1, "p"))
        with pytest.raises(ValueError):
            poisson_arrivals(100.0, -1.0, RandomSource(1, "p"))


class TestBurstyArrivals:
    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, rate=st.floats(min_value=1.0, max_value=1000.0))
    def test_same_seed_same_sequence(self, seed, rate):
        args = (rate, 3_000.0)
        first = bursty_arrivals(*args, RandomSource(seed, "b"),
                                on_ms=200.0, off_ms=300.0)
        second = bursty_arrivals(*args, RandomSource(seed, "b"),
                                 on_ms=200.0, off_ms=300.0)
        assert first == second

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, on_ms=st.floats(min_value=10.0, max_value=500.0),
           off_ms=st.floats(min_value=10.0, max_value=500.0))
    def test_silent_off_windows(self, seed, on_ms, off_ms):
        """With off_rate=0, every arrival lands inside an on-window —
        checked against the same alternating-window walk the generator
        itself performs (no float-modulo guessing)."""
        horizon = 5_000.0
        times = bursty_arrivals(400.0, horizon, RandomSource(seed, "b"),
                                on_ms=on_ms, off_ms=off_ms)
        assert all(a < b for a, b in zip(times, times[1:]))
        windows = []
        start, on = 0.0, True
        while start < horizon:
            width = on_ms if on else off_ms
            if on:
                windows.append((start, min(start + width, horizon)))
            start += width
            on = not on
        for t in times:
            assert any(lo <= t < hi for lo, hi in windows), (
                f"arrival {t} outside every on-window")

    def test_duty_cycle_rate(self):
        """A 40% duty cycle at 1000 RPS averages 400 RPS: expected count
        over 100s is 40,000, sigma=200, so 4 sigma is +-800."""
        times = bursty_arrivals(1000.0, 100_000.0, RandomSource(4, "b"),
                                on_ms=400.0, off_ms=600.0)
        assert 39_200 <= len(times) <= 40_800

    def test_off_rate_fills_off_windows(self):
        """A nonzero off-rate keeps a trickle flowing between bursts."""
        times = bursty_arrivals(500.0, 50_000.0, RandomSource(6, "b"),
                                on_ms=500.0, off_ms=500.0,
                                off_rate_rps=50.0)
        period = 1_000.0
        off_count = sum(1 for t in times
                        if math.fmod(t, period) >= 500.0)
        # ~50 RPS for 25s of off-time -> ~1250 arrivals; demand a wide band.
        assert 900 <= off_count <= 1_700

    def test_rejects_bad_parameters(self):
        rand = RandomSource(1, "b")
        with pytest.raises(ValueError):
            bursty_arrivals(0.0, 1_000.0, rand, on_ms=10.0, off_ms=10.0)
        with pytest.raises(ValueError):
            bursty_arrivals(10.0, 1_000.0, rand, on_ms=0.0, off_ms=10.0)
        with pytest.raises(ValueError):
            bursty_arrivals(10.0, 1_000.0, rand, on_ms=10.0, off_ms=10.0,
                            off_rate_rps=-1.0)


class TestMergeStreams:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.lists(st.floats(min_value=0.0, max_value=1e6),
                             max_size=50),
                    max_size=5))
    def test_sorted_and_complete(self, raw):
        streams = [(f"class-{i}", sorted(times))
                   for i, times in enumerate(raw)]
        merged = merge_streams(streams)
        assert len(merged) == sum(len(times) for _, times in streams)
        assert all(a[0] <= b[0] for a, b in zip(merged, merged[1:]))
        for name, times in streams:
            assert [t for t, tag in merged if tag == name] == times

    def test_stable_tie_order(self):
        """Equal arrival instants fire in stream-declaration order, so a
        multi-class mix is deterministic even under ties."""
        merged = merge_streams([("a", [1.0, 2.0]),
                                ("b", [1.0, 2.0]),
                                ("c", [2.0])])
        assert merged == [(1.0, "a"), (1.0, "b"),
                          (2.0, "a"), (2.0, "b"), (2.0, "c")]

    def test_empty(self):
        assert merge_streams([]) == []
        assert merge_streams([("a", [])]) == []


# ---------------------------------------------------------------------------
# admission window / backpressure
# ---------------------------------------------------------------------------

def _drive(kernel: SimKernel) -> None:
    kernel.run()
    kernel.shutdown()


class TestAdmissionWindow:
    def _shed_run(self) -> tuple[list, AdmissionWindow]:
        kernel = SimKernel(seed=3)
        window = AdmissionWindow(kernel, max_in_flight=2, policy="shed")
        outcomes: list[tuple[str, bool]] = []

        def client(tag: str) -> None:
            admitted = window.try_enter()
            outcomes.append((tag, admitted))
            if admitted:
                kernel.sleep(10.0)
                window.leave()

        for i in range(5):
            kernel.spawn(client, f"c{i}", name=f"c{i}")
        _drive(kernel)
        return outcomes, window

    def test_shed_policy_is_deterministic(self):
        """5 simultaneous arrivals into a 2-slot shed window: the first
        two (in spawn order) win, the rest shed — identically on
        every run."""
        first, w1 = self._shed_run()
        second, w2 = self._shed_run()
        assert first == second
        assert first == [("c0", True), ("c1", True),
                         ("c2", False), ("c3", False), ("c4", False)]
        assert w1.stats.shed == w2.stats.shed == 3
        assert w1.stats.admitted == 2
        assert w1.stats.max_in_flight == 2
        assert w1.in_flight == 0

    def test_queue_policy_fifo_handoff(self):
        """One slot, queued arrivals 1ms apart: admission order and
        times follow arrival order exactly (10ms service each)."""
        kernel = SimKernel(seed=3)
        window = AdmissionWindow(kernel, max_in_flight=1,
                                 policy="queue", max_queue=10)
        admitted: list[tuple[str, float]] = []

        def client(tag: str) -> None:
            assert window.try_enter()
            admitted.append((tag, kernel.now))
            kernel.sleep(10.0)
            window.leave()

        for i in range(4):
            kernel.spawn(client, f"c{i}", name=f"c{i}", delay=float(i))
        _drive(kernel)
        assert admitted == [("c0", 0.0), ("c1", 10.0),
                            ("c2", 20.0), ("c3", 30.0)]
        assert window.stats.queued == 3
        assert window.stats.max_queue_depth == 3
        assert window.in_flight == 0

    def test_max_queue_bound_sheds(self):
        kernel = SimKernel(seed=3)
        window = AdmissionWindow(kernel, max_in_flight=1,
                                 policy="queue", max_queue=1)
        outcomes: list[tuple[str, bool]] = []

        def client(tag: str) -> None:
            admitted = window.try_enter()
            outcomes.append((tag, admitted))
            if admitted:
                kernel.sleep(50.0)
                window.leave()

        for i in range(3):
            kernel.spawn(client, f"c{i}", name=f"c{i}", delay=float(i))
        _drive(kernel)
        # c0 holds the slot, c1 queues, c2 finds the queue full.
        assert (f"c2", False) in outcomes
        assert window.stats.shed == 1
        assert window.stats.admitted == 2
        assert window.in_flight == 0

    def test_killed_waiter_returns_slot(self):
        """Killing a queued waiter (what a crash sweep does) must not
        leak window capacity or stall later waiters."""
        kernel = SimKernel(seed=3)
        window = AdmissionWindow(kernel, max_in_flight=1,
                                 policy="queue", max_queue=10)
        admitted: list[str] = []

        def client(tag: str) -> None:
            if window.try_enter():
                admitted.append(tag)
                kernel.sleep(100.0)
                window.leave()

        kernel.spawn(client, "holder", name="holder")
        victim = kernel.spawn(client, "victim", name="victim", delay=1.0)
        kernel.spawn(client, "patient", name="patient", delay=2.0)
        kernel.spawn(lambda: victim.kill(), name="killer", delay=10.0)
        _drive(kernel)
        assert admitted == ["holder", "patient"]
        assert window.stats.abandoned == 1
        assert window.stats.queued == 2
        assert window.stats.admitted == 2
        assert window.in_flight == 0

    def test_rejects_bad_parameters(self):
        kernel = SimKernel(seed=1)
        with pytest.raises(ValueError):
            AdmissionWindow(kernel, 0)
        with pytest.raises(ValueError):
            AdmissionWindow(kernel, 4, policy="drop")
        with pytest.raises(ValueError):
            AdmissionWindow(kernel, 4, max_queue=-1)
        kernel.shutdown()


# ---------------------------------------------------------------------------
# the open-loop driver's measurement semantics
# ---------------------------------------------------------------------------

class _StubRuntime:
    """Just enough runtime for run_open_loop: a fixed service time."""

    def __init__(self, service_ms: float) -> None:
        self.kernel = SimKernel(seed=2)
        self.service_ms = service_ms
        self.calls: list[tuple[float, dict]] = []

    def client_call(self, entry: str, payload: dict) -> dict:
        self.calls.append((self.kernel.now, payload))
        self.kernel.sleep(self.service_ms)
        return {"ok": True}


class TestOpenLoopDriver:
    def test_latency_runs_from_intended_arrival(self):
        """The anti-coordinated-omission property itself: with a 1-slot
        window and 50ms service, the request arriving at t=10 is served
        at t=50 and finishes at t=100 — its latency is 90ms (measured
        from its intended arrival), not 50ms (its service time)."""
        runtime = _StubRuntime(service_ms=50.0)
        config = OpenLoopConfig(max_in_flight=1, policy="queue",
                                max_queue=10)
        result = run_open_loop(runtime, "stub", lambda rand: {},
                               [0.0, 10.0], config=config,
                               duration_ms=100.0)
        runtime.kernel.shutdown()
        assert result.recorder.samples == [50.0, 90.0]
        assert result.offered == 2
        assert result.completed == 2
        assert result.goodput_rps == pytest.approx(20.0)

    def test_warmup_arrivals_execute_unrecorded(self):
        runtime = _StubRuntime(service_ms=5.0)
        config = OpenLoopConfig(max_in_flight=8, warmup_ms=25.0)
        result = run_open_loop(runtime, "stub", lambda rand: {},
                               [0.0, 20.0, 30.0], config=config,
                               duration_ms=75.0)
        runtime.kernel.shutdown()
        # All three ran (they warm caches), only the post-warmup one counts.
        assert len(runtime.calls) == 3
        assert result.offered == 1
        assert result.recorder.samples == [5.0]

    def test_shed_policy_records_shed(self):
        runtime = _StubRuntime(service_ms=50.0)
        config = OpenLoopConfig(max_in_flight=1, policy="shed")
        result = run_open_loop(runtime, "stub", lambda rand: {},
                               [0.0, 10.0], config=config,
                               duration_ms=100.0)
        runtime.kernel.shutdown()
        assert result.completed == 1
        assert result.shed == 1
        assert result.admission.shed == 1
        assert result.recorder.samples == [50.0]

    def test_tagged_arrivals_reach_sample(self):
        runtime = _StubRuntime(service_ms=1.0)
        arrivals = merge_streams([("hot", [0.0, 2.0]), ("cold", [1.0])])
        result = run_open_loop(
            runtime, "stub", lambda rand, tag: {"class": tag},
            arrivals, config=OpenLoopConfig(max_in_flight=8),
            duration_ms=10.0)
        runtime.kernel.shutdown()
        assert [p["class"] for _t, p in runtime.calls] == [
            "hot", "cold", "hot"]
        assert result.completed == 3


def _synthetic_point(rate: float, goodput_frac: float,
                     p99_ms: float) -> OpenLoopPoint:
    result = OpenLoopResult(offered_rps=rate, duration_ms=1_000.0)
    result.offered = int(rate)
    for _ in range(max(1, int(rate * goodput_frac))):
        result.recorder.record(0.0, p99_ms)
    return OpenLoopPoint(rate=rate, result=result)


class TestFindKnee:
    def test_goodput_collapse_marks_saturation(self):
        points = [_synthetic_point(100.0, 1.0, 10.0),
                  _synthetic_point(200.0, 1.0, 12.0),
                  _synthetic_point(400.0, 0.5, 25.0)]
        knee = find_knee(points)
        assert knee["knee_rps"] == 200.0
        assert knee["saturated_at"] == 400.0
        assert knee["baseline_p99_ms"] == 10.0

    def test_latency_blowup_marks_saturation(self):
        """Goodput can keep up while p99 explodes — still saturated."""
        points = [_synthetic_point(100.0, 1.0, 10.0),
                  _synthetic_point(200.0, 1.0, 100.0)]
        knee = find_knee(points)
        assert knee["knee_rps"] == 100.0
        assert knee["saturated_at"] == 200.0

    def test_unsaturated_sweep_has_no_knee_end(self):
        points = [_synthetic_point(100.0, 1.0, 10.0),
                  _synthetic_point(200.0, 1.0, 11.0)]
        knee = find_knee(points)
        assert knee["knee_rps"] == 200.0
        assert knee["saturated_at"] is None

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            find_knee([])


# ---------------------------------------------------------------------------
# exactly-once under an open-loop crash sweep
# ---------------------------------------------------------------------------

def _crash_runtime() -> tuple[BeldiRuntime, object]:
    runtime = BeldiRuntime(
        seed=5, latency_scale=0.0,
        config=BeldiConfig(ic_restart_delay=200.0, gc_t=1e12,
                           lock_retry_backoff=5.0, lock_retry_limit=500),
        platform_config=PlatformConfig(concurrency_limit=400),
        shards=1, elastic=False)

    def bump(ctx, payload):
        uid = payload["user"]
        record = ctx.read("profiles", uid) or {"visits": 0}
        ctx.write("profiles", uid, {"visits": record["visits"] + 1})
        return {"ok": True}

    ssf = runtime.register_ssf("bump", bump, tables=["profiles"])
    return runtime, ssf


def _written_rows(ssf) -> list[int]:
    """visit counts of every key any request wrote."""
    table = ssf.env.data_table("profiles")
    return [ssf.env.peek("profiles", key)["visits"]
            for key in daal.all_keys(ssf.env.store, table)]


def _make_sample():
    """Each request targets its own key, so 'applied exactly once' is
    directly countable: one row per effect, every row at visits=1.
    (A shared counter would instead race at the application level —
    read and write are separate exactly-once ops, not a transaction.)"""
    counter = itertools.count()

    def sample(rand: RandomSource, tag: str) -> dict:
        return {"user": f"{tag}-{next(counter):04d}"}

    return sample


def _open_loop_mix(runtime) -> OpenLoopResult:
    arrivals = merge_streams([
        ("hot", poisson_arrivals(80.0, 300.0,
                                 RandomSource(7, "crash/hot"))),
        ("cold", poisson_arrivals(40.0, 300.0,
                                  RandomSource(7, "crash/cold"))),
    ])
    config = OpenLoopConfig(max_in_flight=4, policy="queue",
                            max_queue=200, drain_ms=5_000.0)
    return run_open_loop(runtime, "bump", _make_sample(), arrivals,
                         config=config, seed=7)


def _recover(runtime) -> None:
    elapsed = runtime.kernel.now
    for _ in range(100):
        if all(not intents.pending_intents(env)
               for env in runtime.envs.values()):
            return
        elapsed += 500.0
        runtime.kernel.run(until=elapsed)
    raise AssertionError("unfinished intents survived recovery")


def test_open_loop_crash_sweep_exactly_once():
    """Open-loop mix + CrashOnce at each sampled crash point: after
    intent-collector recovery, the per-user counters account for every
    admitted request exactly once — no lost increments, no replays —
    and the admission window's books balance."""
    runtime, ssf = _crash_runtime()
    recording = RecordingPolicy()
    runtime.platform.crash_policy = recording
    assert runtime.run_workflow("bump", {"user": "warm-0000"}).get("ok")
    runtime.kernel.shutdown()
    points = recording.unique_points()
    assert len(points) > 10, "suspiciously small crash space"
    step = max(1, len(points) // 10)
    sampled = points[::step]

    for function, index, tag in sampled:
        runtime, ssf = _crash_runtime()
        runtime.platform.crash_policy = CrashOnce(
            function, tag, invocation_index=index)
        runtime.start_collectors(ic_period=200.0, gc_period=1e12)
        result = _open_loop_mix(runtime)
        _recover(runtime)
        runtime.stop_collectors()

        n = result.offered
        ok = result.completed
        crashed = result.recorder.total("crashed")
        label = f"{function}@{tag}#{index}"
        assert runtime.platform.stats.injected_crashes == 1, (
            f"{label}: crash point never reached")
        assert crashed == 1, f"{label}: crashed={crashed}"
        assert result.shed == 0 and result.rejected == 0, label
        assert result.recorder.total("timeout") == 0, label
        assert ok + crashed == n, f"{label}: lost requests"
        # Exactly once: every completed request wrote its own row once;
        # the crashed one wrote zero or one rows (zero only when the
        # crash preceded its intent record) — and no row was ever
        # written twice, even after intent-collector re-execution.
        rows = _written_rows(ssf)
        assert all(v == 1 for v in rows), (
            f"{label}: duplicated effect, rows={rows}")
        assert ok <= len(rows) <= ok + crashed, (
            f"{label}: rows={len(rows)} ok={ok} crashed={crashed}")
        # No leaked window capacity either way.
        assert result.admission.admitted == n, label
        runtime.kernel.shutdown()
