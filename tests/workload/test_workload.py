"""Tests for the load generator and latency recorder."""

import pytest

from repro.core import BaselineRuntime, BeldiRuntime
from repro.platform import PlatformConfig
from repro.sim import RandomSource
from repro.workload import (
    LatencyRecorder,
    ZipfSampler,
    run_constant_load,
    run_sweep,
    skewed_keys,
    zipf_weights,
)


class TestZipfSkew:
    def test_same_seed_same_sequence(self):
        """Determinism: the elasticity benchmark's static and elastic
        runs must see the byte-identical request series."""
        first = ZipfSampler(64, 1.1, RandomSource(7, "zipf"))
        second = ZipfSampler(64, 1.1, RandomSource(7, "zipf"))
        assert first.sequence(500) == second.sequence(500)

    def test_different_seed_differs(self):
        first = ZipfSampler(64, 1.1, RandomSource(7, "zipf"))
        second = ZipfSampler(64, 1.1, RandomSource(8, "zipf"))
        assert first.sequence(200) != second.sequence(200)

    def test_weights_shape(self):
        w = zipf_weights(100, 1.1)
        assert len(w) == 100
        assert abs(sum(w) - 1.0) < 1e-9
        # Strictly decreasing by rank, and rank 0 carries the head.
        assert all(a > b for a, b in zip(w, w[1:]))
        assert w[0] == pytest.approx(2 ** 1.1 * w[1])

    def test_s_zero_is_uniform(self):
        w = zipf_weights(10, 0.0)
        assert all(weight == pytest.approx(0.1) for weight in w)

    def test_empirical_distribution_matches_theory(self):
        """Distribution-shape sanity: over many draws, the hot rank's
        empirical share lands near its theoretical weight and the
        frequency ordering follows rank for the head of the curve."""
        n, s = 64, 1.1
        sampler = ZipfSampler(n, s, RandomSource(3, "zipf"))
        counts = [0] * n
        draws = 20_000
        for rank in sampler.sequence(draws):
            counts[rank] += 1
        weights = zipf_weights(n, s)
        assert counts[0] / draws == pytest.approx(weights[0], rel=0.1)
        assert counts[1] / draws == pytest.approx(weights[1], rel=0.15)
        # The head dominates the tail decisively.
        assert counts[0] > 3 * counts[10] > 0

    def test_skewed_keys_maps_ranks_to_keys(self):
        keys = [f"k{i}" for i in range(8)]
        rand = RandomSource(5, "sk")
        picks = skewed_keys(keys, 400, 1.1, rand)
        assert len(picks) == 400
        assert set(picks) <= set(keys)
        from collections import Counter
        histogram = Counter(picks)
        assert histogram["k0"] == max(histogram.values())

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.1)
        with pytest.raises(ValueError):
            zipf_weights(10, -0.5)


class TestLatencyRecorder:
    def test_percentiles(self):
        rec = LatencyRecorder()
        for latency in range(1, 101):
            rec.record(0.0, float(latency))
        assert rec.p50 == 50.0
        assert rec.p99 == 99.0
        assert rec.percentile(100.0) == 100.0

    def test_empty_recorder_is_nan(self):
        import math
        rec = LatencyRecorder()
        assert math.isnan(rec.p50)

    def test_failures_not_in_latency_stats(self):
        rec = LatencyRecorder()
        rec.record(0.0, 10.0, "ok")
        rec.record_failure("rejected")
        assert rec.count == 1
        assert rec.total("rejected") == 1

    def test_time_series_buckets(self):
        rec = LatencyRecorder(bucket_width=100.0)
        rec.record(10.0, 15.0)    # bucket 0, latency 5
        rec.record(50.0, 65.0)    # bucket 0, latency 15
        rec.record(150.0, 160.0)  # bucket 1, latency 10
        series = rec.series(q=50.0)
        assert series == [(0.0, 5.0), (100.0, 10.0)]

    def test_series_requires_bucket_width(self):
        with pytest.raises(ValueError):
            LatencyRecorder().series()


class TestConstantLoad:
    def _runtime(self, scale=1.0, cap=50):
        runtime = BeldiRuntime(
            seed=4, latency_scale=scale,
            platform_config=PlatformConfig(concurrency_limit=cap))
        runtime.register_ssf("echo", lambda ctx, p: p)
        return runtime

    def test_open_loop_offers_requested_rate(self):
        runtime = self._runtime()
        result = run_constant_load(
            runtime, "echo", lambda rand: {"n": rand.randint(0, 9)},
            rate_rps=50.0, duration_ms=2_000.0)
        # 50 rps for 2 virtual seconds ~ 100 requests.
        assert 90 <= result.completed <= 110
        assert result.recorder.p50 > 0
        runtime.kernel.shutdown()

    def test_latency_measured_in_virtual_ms(self):
        runtime = self._runtime()
        result = run_constant_load(
            runtime, "echo", lambda rand: None,
            rate_rps=10.0, duration_ms=1_000.0)
        # A single warm invoke is dominated by the dispatch latency
        # (median ~12 virtual ms) plus cold-start effects early on.
        assert 5.0 <= result.recorder.p50 <= 300.0
        runtime.kernel.shutdown()

    def test_saturation_rejects_clients(self):
        runtime = BeldiRuntime(
            seed=4, latency_scale=1.0,
            platform_config=PlatformConfig(concurrency_limit=2))

        def slow(ctx, payload):
            ctx.sleep(500.0)
            return "ok"

        runtime.register_ssf("slow", slow)
        result = run_constant_load(runtime, "slow", lambda rand: None,
                                   rate_rps=40.0, duration_ms=1_000.0)
        assert result.rejected > 0
        runtime.kernel.shutdown()

    def test_warmup_requests_excluded(self):
        runtime = self._runtime()
        result = run_constant_load(
            runtime, "echo", lambda rand: None,
            rate_rps=20.0, duration_ms=1_000.0, warmup_ms=500.0)
        assert result.completed <= 25  # only the measured second counts
        runtime.kernel.shutdown()

    def test_deterministic_given_seed(self):
        def one_run():
            runtime = self._runtime()
            result = run_constant_load(
                runtime, "echo", lambda rand: rand.randint(0, 99),
                rate_rps=30.0, duration_ms=1_000.0, seed=9)
            runtime.kernel.shutdown()
            return (result.completed, result.recorder.p50,
                    result.recorder.p99)

        assert one_run() == one_run()


class TestSweep:
    def test_sweep_builds_fresh_runtime_per_point(self):
        built = []

        def build():
            runtime = BaselineRuntime(seed=2, latency_scale=1.0)
            runtime.register_ssf("echo", lambda ctx, p: p)
            built.append(runtime)
            return runtime, "echo", lambda rand: None

        points = run_sweep(build, rates=[10.0, 20.0],
                           duration_ms=500.0)
        assert len(points) == 2
        assert len(built) == 2
        assert points[1].result.completed > points[0].result.completed

    def test_rows_are_reportable(self):
        def build():
            runtime = BaselineRuntime(seed=2, latency_scale=1.0)
            runtime.register_ssf("echo", lambda ctx, p: p)
            return runtime, "echo", lambda rand: None

        (point,) = run_sweep(build, rates=[10.0], duration_ms=500.0)
        row = point.row()
        assert set(row) >= {"offered_rps", "achieved_rps", "p50_ms",
                            "p99_ms", "completed", "rejected"}


class TestClosedLoop:
    def _runtime(self, **kwargs):
        runtime = BeldiRuntime(seed=2, latency_scale=1.0, **kwargs)

        def echo(ctx, payload):
            ctx.write("kv", payload["key"], payload["value"])
            return payload["value"]

        ssf = runtime.register_ssf("echo", echo, tables=["kv"])
        return runtime, ssf

    def test_all_requests_complete_and_are_measured(self):
        from repro.workload import run_closed_loop
        runtime, ssf = self._runtime()
        result = run_closed_loop(
            runtime, "echo",
            [[{"key": f"u{u}", "value": k} for k in range(3)]
             for u in range(5)])
        assert result.completed == 15
        assert result.failures == 0
        assert result.makespan_ms > 0
        assert result.throughput_rps > 0
        assert result.recorder.p99 >= result.recorder.p50 > 0
        for u in range(5):
            assert ssf.env.peek("kv", f"u{u}") == 2
        runtime.kernel.shutdown()

    def test_makespan_excludes_watchdog_drain(self):
        """The platform's execution-timeout watchdogs fire long after the
        last user finishes; they must not stretch the makespan."""
        from repro.workload import run_closed_loop
        runtime, _ssf = self._runtime(
            platform_config=PlatformConfig(default_timeout=500_000.0))
        result = run_closed_loop(runtime, "echo",
                                 [[{"key": "a", "value": 1}]])
        assert result.makespan_ms < 100_000.0
        runtime.kernel.shutdown()

    def test_rejections_counted_not_raised(self):
        from repro.workload import run_closed_loop
        runtime, _ssf = self._runtime(
            platform_config=PlatformConfig(concurrency_limit=1))
        # 8 users x 1 request against a 1-slot gateway: most get
        # TooManyRequests, which must surface as counted failures.
        result = run_closed_loop(runtime, "echo",
                                 [[{"key": f"u{u}", "value": 0}]
                                  for u in range(8)])
        assert result.completed + result.failures == 8
        assert result.failures > 0
        runtime.kernel.shutdown()
